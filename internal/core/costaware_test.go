package core

import (
	"testing"

	"megadc/internal/lbswitch"
	"megadc/internal/netmodel"
)

// newCostPlatform builds a platform whose links have different usage
// costs, alternating 3 and 1 per Mbps so each application's VIP pair
// (advertised round-robin on consecutive links) spans both cost tiers.
func newCostPlatform(t *testing.T, cfg Config) *Platform {
	t.Helper()
	p := newTestPlatform(t, cfg)
	for _, l := range p.Net.Links() {
		if int(l.ID)%2 == 0 {
			l.CostPerMbps = 3
		} else {
			l.CostPerMbps = 1
		}
	}
	return p
}

func TestCostAwareExposureReducesCost(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobSelectiveExposure)
	cfg.CostAwareExposure = true
	p := newCostPlatform(t, cfg)
	// Apps with VIPs spread over all links; moderate load.
	for i := 0; i < 4; i++ {
		if _, err := p.OnboardApp("a", defaultSlice(), 2, Demand{CPU: 1, Mbps: 200}); err != nil {
			t.Fatal(err)
		}
	}
	before := p.Net.TotalCost()
	for i := 0; i < 20; i++ {
		p.Global.Step()
		p.Eng.RunFor(cfg.DNSUpdateLatency + 1)
	}
	after := p.Net.TotalCost()
	if after >= before {
		t.Errorf("cost did not drop: %v -> %v", before, after)
	}
	// No link pushed past the ceiling.
	for _, l := range p.Net.Links() {
		if l.Utilization() > cfg.CostShiftCeiling+0.05 {
			t.Errorf("link %d above ceiling: %v", l.ID, l.Utilization())
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCostAwareYieldsToOverload(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobSelectiveExposure)
	cfg.CostAwareExposure = true
	p := newCostPlatform(t, cfg)
	app, err := p.OnboardApp("a", defaultSlice(), 4, Demand{CPU: 1, Mbps: 1100})
	if err != nil {
		t.Fatal(err)
	}
	// Concentrate on one VIP to overload its link: balancing must win
	// over economizing (no cost shift while a link is overloaded).
	vips := p.DNS.VIPs(app.ID)
	p.DNS.ExposeOnly(app.ID, vips[0])
	p.Propagate()
	if len(p.Net.OverloadedLinks(cfg.LinkOverloadUtil)) == 0 {
		t.Fatal("setup: no overloaded link")
	}
	for i := 0; i < 10; i++ {
		p.Global.Step()
		p.Eng.RunFor(cfg.DNSUpdateLatency + 1)
	}
	if got := len(p.Net.OverloadedLinks(1.0)); got != 0 {
		t.Errorf("%d links still above 100%%", got)
	}
}

func TestRecycleUnusedVIPs(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobSelectiveExposure)
	cfg.RecycleUnusedVIPs = true
	p := newTestPlatform(t, cfg)
	app, err := p.OnboardApp("a", defaultSlice(), 2, Demand{CPU: 1, Mbps: 300})
	if err != nil {
		t.Fatal(err)
	}
	// Hide one VIP: it becomes "unused" (no exposure, no traffic).
	vips := p.DNS.VIPs(app.ID)
	p.DNS.SetWeight(app.ID, vips[0], 0)
	p.Propagate()
	oldLinks := p.Net.ActiveLinks(vips[0])
	if len(oldLinks) != 1 {
		t.Fatal("setup: VIP not advertised once")
	}
	// Load the unused VIP's current link with synthetic traffic so it is
	// definitely not the least-loaded link and recycling must move it.
	if err := p.Net.Advertise("192.0.2.99", oldLinks[0], false); err != nil {
		t.Fatal(err)
	}
	p.Net.SetVIPTraffic("192.0.2.99", 500)
	p.Global.Step()
	p.Eng.RunFor(5)
	if p.Global.VIPRecycles == 0 {
		t.Fatal("unused VIP not recycled")
	}
	newLinks := p.Net.ActiveLinks(vips[0])
	if len(newLinks) != 1 {
		t.Fatalf("recycled VIP advertised %d times", len(newLinks))
	}
	// Re-exposing the VIP later works and traffic lands on the new link.
	p.DNS.SetWeight(app.ID, vips[0], 1)
	p.Propagate()
	if p.Net.Link(newLinks[0]).LoadMbps() <= 0 {
		t.Error("re-exposed VIP carries nothing on its recycled link")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecycleSkipsSuppressedAndUsed(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobSelectiveExposure)
	cfg.RecycleUnusedVIPs = true
	p := newTestPlatform(t, cfg)
	app, _ := p.OnboardApp("a", defaultSlice(), 2, Demand{CPU: 1, Mbps: 300})
	vips := p.DNS.VIPs(app.ID)
	// Suppressed (draining) VIPs are left alone even at weight 0.
	p.DNS.SetWeight(app.ID, vips[0], 0)
	p.Suppress(lbswitchVIP(vips[0]), true)
	p.Propagate()
	before := p.Net.ActiveLinks(vips[0])
	recycles := p.Global.VIPRecycles
	p.Global.Step()
	p.Eng.RunFor(5)
	if p.Global.VIPRecycles != recycles {
		t.Error("suppressed VIP recycled")
	}
	after := p.Net.ActiveLinks(vips[0])
	if len(before) != len(after) || before[0] != after[0] {
		t.Error("suppressed VIP moved")
	}
	_ = netmodel.LinkID(0)
}

// lbswitchVIP converts a DNS VIP string to the switch VIP type.
func lbswitchVIP(s string) (v lbswitch.VIP) { return lbswitch.VIP(s) }
