package core

import (
	"fmt"
	"testing"

	"megadc/internal/cluster"
	"megadc/internal/lbswitch"
)

// TestInterningOrderInvariance pins that intern-index assignment is an
// invisible implementation detail: shifting every real VIP/RIP index by
// pre-interning thousands of unrelated keys (in descending name order,
// so the hole pattern is maximally unlike the clean run) changes no
// observable output of a seeded run — demand state, audit report, or
// satisfaction. Outputs must key on external IDs, never intern order.
func TestInterningOrderInvariance(t *testing.T) {
	run := func(prewarm bool) *Platform {
		topo := SmallTopology()
		topo.Seed = 7
		cfg := DefaultConfig()
		cfg.VIPsPerApp = 2
		p, err := NewPlatform(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prewarm {
			for i := 3000; i > 0; i-- {
				p.vipIndex(lbswitch.VIP(fmt.Sprintf("padvip-%d", i)))
				p.ripIx.Intern(lbswitch.RIP(fmt.Sprintf("padrip-%d", i)))
			}
		}
		var apps []cluster.AppID
		for i := 0; i < 12; i++ {
			a, err := p.OnboardApp(fmt.Sprintf("iv-%d", i),
				cluster.Resources{CPU: 0.5, MemMB: 256, NetMbps: 20}, 2,
				Demand{CPU: 1 + float64(i)*0.37, Mbps: 15 + float64(i)*2.1})
			if err != nil {
				t.Fatal(err)
			}
			apps = append(apps, a.ID)
		}
		// Churn: demand swings, a deploy, a removal, session overlay,
		// and a switch fault/repair cycle.
		for i, app := range apps {
			p.SetAppDemand(app, Demand{CPU: 2 + float64(i)*0.11, Mbps: 25 + float64(i)*1.3})
		}
		if _, err := p.DeployInstance(apps[3], p.podOrder[1]); err != nil {
			t.Fatal(err)
		}
		vms := p.Cluster.App(apps[5]).VMIDs()
		if err := p.RemoveInstance(vms[0]); err != nil {
			t.Fatal(err)
		}
		vip := p.Fabric.VIPsOfApp(apps[2])[0]
		vm := p.Cluster.App(apps[2]).VMIDs()[0]
		p.SessionOpened(vip, vm, cluster.Resources{CPU: 0.2, NetMbps: 3})
		if err := p.FaultSwitch(0); err != nil {
			t.Fatal(err)
		}
		if _, _, err := p.DetectSwitch(0); err != nil {
			t.Fatal(err)
		}
		if err := p.RepairSwitch(0); err != nil {
			t.Fatal(err)
		}
		p.Propagate()
		return p
	}
	clean := run(false)
	padded := run(true)
	if d := clean.captureState().diff(padded.captureState()); d != "" {
		t.Fatalf("prewarmed interner changed propagated state: %s", d)
	}
	if a, b := clean.TotalSatisfaction(), padded.TotalSatisfaction(); a != b {
		t.Fatalf("satisfaction %v != %v", a, b)
	}
	if a, b := clean.Audit().String(), padded.Audit().String(); a != b {
		t.Fatalf("audit reports diverged:\n%s\n----\n%s", a, b)
	}
}
