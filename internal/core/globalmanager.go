package core

import (
	"cmp"
	"errors"
	"slices"

	"megadc/internal/cluster"
	"megadc/internal/ctrlplane"
	"megadc/internal/lbswitch"
	"megadc/internal/netmodel"
	"megadc/internal/policy"
	"megadc/internal/trace"
	"megadc/internal/viprip"
)

// errDeadLetter marks a drain step whose control message exhausted its
// retry cap; the drain settles as a failed transfer.
var errDeadLetter = errors.New("core: control-plane message dead-lettered")

// GlobalManager is the datacenter-scale resource manager (paper Section
// III-A). It monitors every pod, LB switch, and access link, and
// actuates the global knobs: selective VIP exposure (A), dynamic VIP
// transfer (B), server transfer between pods (C), dynamic application
// deployment (D), inter-pod RIP weight adjustment (F), and the
// elephant-pod guard.
type GlobalManager struct {
	p *Platform

	// Action counters (experiment outputs).
	ExposureChanges  int64
	VIPTransfers     int64
	ServerTransfers  int64
	Deployments      int64
	Removals         int64
	InterPodAdjusts  int64
	ElephantMoves    int64
	Steps            int64
	FailedTransfers  int64
	DrainForceBreaks int64
	VIPRecycles      int64

	pendingServer map[cluster.ServerID]bool
	pendingDeploy map[cluster.AppID]bool

	// draining maps each VIP under an active knob-B drain to that drain's
	// instance token (from drainSeq). Every completion path of the drain
	// protocol re-checks the token, so a stale completion — a retried
	// Force whose original settled, or a dead letter racing a delivered
	// transfer — can neither double-count (I4.BROKEN_ACCOUNTED) nor
	// re-expose a VIP someone else is draining (I1.EXPOSED_HOMED).
	draining map[lbswitch.VIP]int64
	drainSeq int64

	// podSnap holds the last pod-utilization snapshot received over the
	// control plane; podUtil reads it instead of live state when the
	// stale-snapshot regime (Cfg.Ctrl.SnapshotEvery) is on.
	podSnap map[cluster.PodID]float64

	// Candidate scratch for the policy decision sites (DESIGN.md §15),
	// reused so feasibility filtering never allocates per decision.
	swCand  []*lbswitch.Switch
	podCand []cluster.PodID
	podLoad []float64
}

func newGlobalManager(p *Platform) *GlobalManager {
	return &GlobalManager{
		p:             p,
		pendingServer: make(map[cluster.ServerID]bool),
		pendingDeploy: make(map[cluster.AppID]bool),
		draining:      make(map[lbswitch.VIP]int64),
		podSnap:       make(map[cluster.PodID]float64),
	}
}

// podUtil returns the pod utilization the global manager acts on: the
// last snapshot cast over the control plane under the stale-snapshot
// regime (live state until the first snapshot lands), live state
// otherwise.
func (g *GlobalManager) podUtil(id cluster.PodID) float64 {
	if g.p.ctrl.Enabled() && g.p.Cfg.Ctrl.SnapshotEvery > 0 {
		if u, ok := g.podSnap[id]; ok {
			return u
		}
	}
	return g.p.pods[id].Utilization()
}

// Step runs one global control iteration. The knobs are tried
// cheapest-and-fastest first, matching the paper's agility observations:
// DNS exposure and weight changes act in seconds, VIP transfers need a
// drain, deployments take minutes, and server transfers require vacating
// machines.
func (g *GlobalManager) Step() {
	g.Steps++
	cfg := &g.p.Cfg
	if cfg.Enabled(KnobSelectiveExposure) {
		g.balanceAccessLinks()
		if cfg.CostAwareExposure {
			g.costAwareExposure()
		}
		if cfg.RecycleUnusedVIPs {
			g.recycleUnusedVIPs()
		}
	}
	if cfg.Enabled(KnobVIPTransfer) {
		g.balanceSwitches()
	}
	if cfg.Enabled(KnobRIPWeights) {
		g.interPodWeights()
	}
	if cfg.Enabled(KnobAppDeployment) {
		g.deployToRelievePods()
		g.removeIdleInstances()
	}
	if cfg.Enabled(KnobServerTransfer) {
		g.transferServersToRelievePods()
	}
	if cfg.ElephantGuard {
		g.guardElephantPods()
	}
}

// ---- Knob A: selective VIP exposure -------------------------------------

// balanceAccessLinks relieves overloaded access links by shifting DNS
// exposure weight from VIPs advertised on hot links to the same
// applications' VIPs on cold links. Routing is untouched — zero route
// updates — and relief begins as soon as the DNS change propagates.
func (g *GlobalManager) balanceAccessLinks() {
	cfg := &g.p.Cfg
	for _, linkID := range g.p.Net.OverloadedLinks(cfg.LinkOverloadUtil) {
		link := g.p.Net.Link(linkID)
		// How much traffic must leave the link to reach the target?
		excess := link.LoadMbps() - cfg.LinkOverloadUtil*link.CapacityMbps
		if excess <= 0 {
			continue
		}
		// Hottest VIPs on the link first.
		vips := g.p.Net.VIPsOnLink(linkID)
		slices.SortFunc(vips, func(a, b string) int {
			ta, tb := g.p.Net.VIPTraffic(a), g.p.Net.VIPTraffic(b)
			if ta != tb {
				if ta > tb {
					return -1
				}
				return 1
			}
			return cmp.Compare(a, b)
		})
		for _, vipStr := range vips {
			if excess <= 0 {
				break
			}
			moved := g.shiftExposureOffLink(vipStr, linkID)
			excess -= moved
		}
	}
}

// shiftExposureOffLink reduces the DNS weight of vip (which rides the
// hot link) and raises the weights of the owning app's VIPs on links
// below the overload threshold. It returns the traffic expected to move
// off the hot link.
func (g *GlobalManager) shiftExposureOffLink(vipStr string, hot netmodel.LinkID) float64 {
	vip := lbswitch.VIP(vipStr)
	home, ok := g.p.Fabric.HomeOf(vip)
	if !ok {
		return 0
	}
	app, ok := g.p.Fabric.Switch(home).AppOf(vip)
	if !ok {
		return 0
	}
	// Find sibling VIPs of the app on non-overloaded links.
	dnsVIPs, weights, err := g.p.DNS.Weights(app)
	if err != nil {
		return 0
	}
	cfg := &g.p.Cfg
	var hotIdx = -1
	var coldIdx []int
	for i, v := range dnsVIPs {
		if v == vipStr {
			hotIdx = i
			continue
		}
		cold := true
		for _, l := range g.p.Net.ActiveLinks(v) {
			lk := g.p.Net.Link(l)
			if !lk.Serving() || lk.Utilization() > cfg.LinkOverloadUtil {
				cold = false
				break
			}
		}
		if cold && len(g.p.Net.ActiveLinks(v)) > 0 {
			coldIdx = append(coldIdx, i)
		}
	}
	if hotIdx < 0 || len(coldIdx) == 0 || weights[hotIdx] <= 0 {
		return 0
	}
	// Halve the hot VIP's weight, spreading the removed weight across
	// the cold VIPs. Repeated control iterations converge.
	delta := weights[hotIdx] / 2
	newHot := weights[hotIdx] - delta
	perCold := delta / float64(len(coldIdx))
	traffic := g.p.Net.VIPTraffic(vipStr)
	cid := g.p.decide(KnobSelectiveExposure, viprip.PriorityNormal,
		trace.VIP(vip), trace.App(app), trace.Link(hot))
	g.p.Eng.After(cfg.DNSUpdateLatency, func() {
		g.p.withCause(cid, func() {
			// The weight set travels as one message; the generation captured
			// at send time makes a reordered retry that arrives after some
			// other decision rewrote this app's record abort instead of
			// clobbering it. On the synchronous path the generation trivially
			// matches and the guard is free.
			gen := g.p.DNS.Gen(app)
			g.p.ctrl.Call(ctrlplane.Global, ctrlplane.DNS, "exposure-shift", func() {
				if err := g.p.DNS.SetWeightIfGen(app, vipStr, newHot, gen); err != nil {
					return
				}
				g.p.Cfg.Trace.Record(trace.EvUnexpose, newHot, delta,
					trace.VIP(vip), trace.App(app), trace.Link(hot))
				for _, i := range coldIdx {
					g.p.DNS.SetWeight(app, dnsVIPs[i], weights[i]+perCold)
					g.p.Cfg.Trace.Record(trace.EvExpose, weights[i]+perCold, perCold,
						trace.VIP(dnsVIPs[i]), trace.App(app))
				}
				g.ExposureChanges++
				g.p.Propagate()
			})
		})
	})
	return traffic / 2
}

// costAwareExposure is the business-objective half of knob A: when no
// link is overloaded, shift DNS exposure from VIPs on expensive links
// toward the same applications' VIPs on cheaper links, without pushing
// any cheap link above CostShiftCeiling. One shift per step keeps the
// adjustment gentle.
func (g *GlobalManager) costAwareExposure() {
	cfg := &g.p.Cfg
	if len(g.p.Net.OverloadedLinks(cfg.LinkOverloadUtil)) > 0 {
		return // balance first, economize later
	}
	// Most expensive loaded link first.
	var hot *netmodel.Link
	for _, l := range g.p.Net.Links() {
		if l.LoadMbps() <= 0 {
			continue
		}
		if hot == nil || l.CostPerMbps > hot.CostPerMbps {
			hot = l
		}
	}
	if hot == nil {
		return
	}
	for _, vipStr := range g.p.Net.VIPsOnLink(hot.ID) {
		vip := lbswitch.VIP(vipStr)
		home, ok := g.p.Fabric.HomeOf(vip)
		if !ok {
			continue
		}
		app, ok := g.p.Fabric.Switch(home).AppOf(vip)
		if !ok {
			continue
		}
		dnsVIPs, weights, err := g.p.DNS.Weights(app)
		if err != nil {
			continue
		}
		hotIdx, cheapIdx := -1, -1
		for i, v := range dnsVIPs {
			if v == vipStr {
				hotIdx = i
				continue
			}
			for _, l := range g.p.Net.ActiveLinks(v) {
				link := g.p.Net.Link(l)
				if link.Serving() && link.CostPerMbps < hot.CostPerMbps && link.Utilization() < cfg.CostShiftCeiling {
					cheapIdx = i
				}
			}
		}
		if hotIdx < 0 || cheapIdx < 0 || weights[hotIdx] <= 0 {
			continue
		}
		delta := weights[hotIdx] / 2
		cid := g.p.decide(KnobSelectiveExposure, viprip.PriorityLow,
			trace.VIP(vip), trace.App(app), trace.Link(hot.ID))
		g.p.Eng.After(cfg.DNSUpdateLatency, func() {
			g.p.withCause(cid, func() {
				gen := g.p.DNS.Gen(app)
				g.p.ctrl.Call(ctrlplane.Global, ctrlplane.DNS, "cost-shift", func() {
					if err := g.p.DNS.SetWeightIfGen(app, dnsVIPs[hotIdx], weights[hotIdx]-delta, gen); err != nil {
						return
					}
					g.p.DNS.SetWeight(app, dnsVIPs[cheapIdx], weights[cheapIdx]+delta)
					g.p.Cfg.Trace.Record(trace.EvUnexpose, weights[hotIdx]-delta, delta,
						trace.VIP(dnsVIPs[hotIdx]), trace.App(app))
					g.p.Cfg.Trace.Record(trace.EvExpose, weights[cheapIdx]+delta, delta,
						trace.VIP(dnsVIPs[cheapIdx]), trace.App(app))
					g.ExposureChanges++
					g.p.Propagate()
				})
			})
		})
		return // one shift per step
	}
}

// recycleUnusedVIPs re-advertises VIPs with no exposure and no traffic
// over the lightly loaded access links — the paper's periodic route
// hygiene, which keeps route updates decoupled from load-balancing
// decisions. Recycled VIPs are spread round-robin over the lightly
// loaded half of the links (the paper says "links", plural: parking
// every unused VIP on one link would overload it the moment they are
// re-exposed).
func (g *GlobalManager) recycleUnusedVIPs() {
	// Serving links sorted by utilization; targets = the lighter half.
	var healthy []netmodel.LinkID
	for _, l := range g.p.Net.Links() {
		if l.Serving() {
			healthy = append(healthy, l.ID)
		}
	}
	if len(healthy) == 0 {
		return
	}
	slices.SortFunc(healthy, func(a, b netmodel.LinkID) int {
		ua := g.p.Net.Link(a).Utilization()
		ub := g.p.Net.Link(b).Utilization()
		if ua != ub {
			if ua < ub {
				return -1
			}
			return 1
		}
		return cmp.Compare(a, b)
	})
	targets := healthy[:(len(healthy)+1)/2]
	isTarget := make(map[netmodel.LinkID]bool, len(targets))
	for _, id := range targets {
		isTarget[id] = true
	}
	rr := 0
	for _, app := range g.p.Cluster.AppIDs() {
		vips, weights, err := g.p.DNS.Weights(app)
		if err != nil {
			continue
		}
		for i, vipStr := range vips {
			if weights[i] != 0 || g.p.Net.VIPTraffic(vipStr) > 0 {
				continue
			}
			if g.p.suppressed[lbswitch.VIP(vipStr)] {
				continue // drains manage their own exposure
			}
			active := g.p.Net.ActiveLinks(vipStr)
			if len(active) == 1 && isTarget[active[0]] {
				continue // already parked on a light link
			}
			target := targets[rr%len(targets)]
			rr++
			for _, l := range active {
				g.p.Net.Withdraw(vipStr, l)
			}
			if err := g.p.Net.Advertise(vipStr, target, false); err == nil {
				g.VIPRecycles++
			}
		}
	}
}

// ---- Knob B: dynamic VIP transfer ----------------------------------------

// balanceSwitches relieves LB switches near their throughput limit by
// transferring their hottest VIPs to underloaded switches. Per the
// paper, the VIP is first drained via selective exposure (weight 0), and
// the internal transfer happens once ongoing sessions have paused — no
// access-router involvement.
func (g *GlobalManager) balanceSwitches() {
	cfg := &g.p.Cfg
	for _, sw := range g.p.Fabric.Switches() {
		if !sw.Serving() || sw.Utilization() <= cfg.SwitchOverloadUtil {
			continue
		}
		excess := sw.ThroughputMbps() - cfg.SwitchOverloadUtil*sw.Limits.ThroughputMbps
		for _, vip := range sw.SortVIPsByLoad() {
			if excess <= 0 {
				break
			}
			if g.draining[vip] != 0 {
				continue
			}
			dst := g.pickTransferTarget(sw, vip)
			if dst == nil {
				continue
			}
			excess -= sw.VIPLoad(vip)
			g.startDrainAndTransfer(vip, dst.ID)
		}
	}
}

// pickTransferTarget selects a switch that can accept vip (VIP slot,
// RIP slots, projected throughput below threshold) via the placement
// policy; the default greedy takes the least-utilized, exactly as the
// historical inline scan did.
func (g *GlobalManager) pickTransferTarget(from *lbswitch.Switch, vip lbswitch.VIP) *lbswitch.Switch {
	_, rips, _, load, err := from.ExportVIP(vip)
	if err != nil {
		return nil
	}
	cfg := &g.p.Cfg
	g.swCand = g.swCand[:0]
	for _, sw := range g.p.Fabric.Switches() {
		if sw.ID == from.ID || !sw.Serving() {
			continue
		}
		if sw.NumVIPs() >= sw.Limits.MaxVIPs || sw.NumRIPs()+len(rips) > sw.Limits.MaxRIPs {
			continue
		}
		if sw.Limits.ThroughputMbps > 0 &&
			(sw.ThroughputMbps()+load)/sw.Limits.ThroughputMbps > cfg.SwitchOverloadUtil {
			continue
		}
		g.swCand = append(g.swCand, sw)
	}
	if len(g.swCand) == 0 {
		return nil
	}
	cands := g.swCand
	idx := g.p.pol.Placement.TransferTarget(policy.Decision{
		Actor: hashVIP(vip),
		N:     len(cands),
		Key:   func(i int) uint64 { return uint64(cands[i].ID) },
		Load:  func(i int) float64 { return cands[i].Utilization() },
	})
	if idx < 0 || idx >= len(cands) {
		return nil
	}
	return cands[idx]
}

// hashVIP folds a VIP address into the stable actor key hash policies
// expect (FNV-1a; addresses are unique for a VIP's lifetime).
func hashVIP(vip lbswitch.VIP) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(vip); i++ {
		h ^= uint64(vip[i])
		h *= 1099511628211
	}
	return h
}

// startDrainAndTransfer runs the Section IV-B protocol: stop exposing
// the VIP, wait out the DNS TTL plus a margin, then transfer. If
// sessions still linger (TTL violators), retry once more and finally
// force the transfer, counting the broken connections.
func (g *GlobalManager) startDrainAndTransfer(vip lbswitch.VIP, dst lbswitch.SwitchID) {
	home, ok := g.p.Fabric.HomeOf(vip)
	if !ok {
		return
	}
	app, ok := g.p.Fabric.Switch(home).AppOf(vip)
	if !ok {
		return
	}
	g.drainSeq++
	token := g.drainSeq
	g.draining[vip] = token
	g.p.Suppress(vip, true)
	cfg := &g.p.Cfg
	vips, ws, err := g.p.DNS.Weights(app)
	if err != nil {
		delete(g.draining, vip)
		g.p.Suppress(vip, false)
		return
	}
	restoreWeight := 1.0
	for i, v := range vips {
		if v == string(vip) {
			restoreWeight = ws[i]
		}
	}
	// The whole drain protocol — hide, TTL wait, transfer attempts with
	// retries, forced break accounting, restore — is one decision: every
	// event it records, across every asynchronous hop, carries this cause.
	cid := g.p.decide(KnobVIPTransfer, viprip.PriorityHigh,
		trace.VIP(vip), trace.SwitchRef(home), trace.SwitchRef(dst))
	// mine reports whether this drain instance still owns the VIP. Every
	// asynchronous completion below checks it first: over a faulty
	// control plane a step's message can settle twice (at-least-once:
	// a delivered transfer whose acks were all lost still dead-letters),
	// and without the token a stale completion would re-expose the VIP
	// (violating I1.EXPOSED_HOMED if it lost its home) or double-count
	// VIPTransfers/DrainForceBreaks (violating I4.BROKEN_ACCOUNTED —
	// every broken connection accounted exactly once).
	mine := func() bool { return g.draining[vip] == token }
	abort := func() {
		if !mine() {
			return
		}
		delete(g.draining, vip)
		g.p.Suppress(vip, false)
	}
	finish := func() {
		g.p.ctrl.CallWithDeadLetter(ctrlplane.Global, ctrlplane.DNS, "drain-restore", func() {
			if !mine() {
				return
			}
			// The VIP can lose its fabric home mid-drain (a detected switch
			// failure with no healthy target drops it outright). Restoring
			// its DNS weight then would expose a dead address
			// (I1.EXPOSED_HOMED); keep it at zero until a rehome reconciles
			// exposure.
			restored := 0.0
			if _, homed := g.p.Fabric.HomeOf(vip); homed {
				restored = restoreWeight
			}
			g.p.DNS.SetWeight(app, string(vip), restored)
			g.p.Cfg.Trace.Record(trace.EvDrainFinish, restored, 0,
				trace.VIP(vip), trace.App(app))
			delete(g.draining, vip)
			g.p.Suppress(vip, false)
			g.p.Propagate()
		}, func() {
			// Restore undeliverable: release the drain without touching
			// exposure — the VIP stays hidden until reconciliation.
			abort()
		})
	}
	attempt := func(retriesLeft int, attemptFn func(int)) {
		if !mine() {
			return
		}
		if retriesLeft == 0 && g.p.Cfg.Trace.Enabled() {
			conns := 0
			if h, ok := g.p.Fabric.HomeOf(vip); ok {
				conns = g.p.Fabric.Switch(h).VIPConns(vip)
			}
			g.p.Cfg.Trace.Record(trace.EvDrainForce, float64(conns), 0,
				trace.VIP(vip), trace.SwitchRef(dst))
		}
		// settled makes the attempt's outcome single-shot: the transfer
		// message's apply path and its dead-letter path can both fire
		// (at-least-once), but only the first one counts.
		settled := false
		settle := func(err error, broken int64) {
			if settled || !mine() {
				return
			}
			settled = true
			switch {
			case err == nil:
				g.VIPTransfers++
				g.DrainForceBreaks += broken
				g.p.Cfg.Causal.AddBroken(cid, broken)
				finish()
			case errors.Is(err, lbswitch.ErrActiveConns) && retriesLeft > 0:
				g.p.Cfg.Trace.Record(trace.EvDrainRetry, float64(retriesLeft), cfg.DrainMargin,
					trace.VIP(vip), trace.SwitchRef(dst))
				g.p.Eng.After(cfg.DrainMargin, func() {
					g.p.withCause(cid, func() { attemptFn(retriesLeft - 1) })
				})
			default:
				g.FailedTransfers++
				finish()
			}
		}
		g.p.ctrl.CallWithDeadLetter(ctrlplane.Global, ctrlplane.CSM, "vip-transfer", func() {
			if g.p.VIPRIP.Serialized() {
				// The transfer waits its turn in the single switch-
				// configuration pipeline; broken connections are counted at
				// apply time inside the manager.
				g.p.VIPRIP.Submit(&viprip.Request{
					Op: viprip.OpTransferVIP, App: app,
					Priority: viprip.PriorityHigh,
					VIP:      vip, Dst: dst, Force: retriesLeft == 0,
					OnDone: func(r *viprip.Request) { settle(r.Err, r.Result.Broken) },
				})
				return
			}
			before := g.p.Fabric.BrokenConns
			err := g.p.Fabric.TransferVIP(vip, dst, retriesLeft == 0)
			settle(err, g.p.Fabric.BrokenConns-before)
		}, func() {
			settle(errDeadLetter, 0)
		})
	}
	var attemptRec func(int)
	attemptRec = func(n int) { attempt(n, attemptRec) }

	g.p.Eng.After(cfg.DNSUpdateLatency, func() {
		g.p.withCause(cid, func() {
			g.p.ctrl.CallWithDeadLetter(ctrlplane.Global, ctrlplane.DNS, "drain-hide", func() {
				if !mine() {
					return
				}
				if err := g.p.DNS.SetWeight(app, string(vip), 0); err != nil {
					delete(g.draining, vip)
					g.p.Suppress(vip, false)
					return
				}
				g.p.Cfg.Trace.Record(trace.EvDrainStart, restoreWeight, g.p.DNS.TTL()+cfg.DrainMargin,
					trace.VIP(vip), trace.SwitchRef(home), trace.SwitchRef(dst))
				g.p.Propagate()
				g.p.Eng.After(g.p.DNS.TTL()+cfg.DrainMargin, func() {
					g.p.withCause(cid, func() { attemptRec(2) })
				})
			}, func() {
				// The hide never reached DNS: the VIP was never actually
				// drained, so just release it.
				abort()
			})
		})
	})
}

// ---- Knob F (inter-pod): RIP weight adjustment ---------------------------

// interPodWeights shifts LB weight between pods covered by a common VIP:
// weight moves from RIPs in overloaded pods to RIPs in underloaded pods,
// preserving the VIP's total weight (so only the split between pods
// changes). This is the fastest inter-pod knob — just a switch
// reconfiguration.
func (g *GlobalManager) interPodWeights() {
	cfg := &g.p.Cfg
	podUtil := make(map[cluster.PodID]float64)
	for _, id := range g.p.podOrder {
		podUtil[id] = g.podUtil(id)
	}
	for _, sw := range g.p.Fabric.Switches() {
		if !sw.Serving() {
			continue
		}
		for _, vip := range sw.VIPs() {
			rips, weights, err := sw.Weights(vip)
			if err != nil || len(rips) < 2 {
				continue
			}
			// Partition the VIP's RIPs by pod.
			podOf := make([]cluster.PodID, len(rips))
			hasHot, hasCold := false, false
			for i, rip := range rips {
				podOf[i] = cluster.NoPod
				if vmID, ok := g.p.VMForRIP(rip); ok {
					if vm := g.p.Cluster.VM(vmID); vm != nil {
						if srv := g.p.Cluster.Server(vm.Server); srv != nil {
							podOf[i] = srv.Pod
						}
					}
				}
				if podOf[i] == cluster.NoPod {
					continue
				}
				if podUtil[podOf[i]] > cfg.PodOverloadUtil {
					hasHot = true
				}
				if podUtil[podOf[i]] < cfg.PodUnderloadUtil {
					hasCold = true
				}
			}
			if !hasHot || !hasCold {
				continue
			}
			newWeights := append([]float64(nil), weights...)
			var moved float64
			var coldIdx []int
			for i := range rips {
				if podOf[i] == cluster.NoPod {
					continue
				}
				if podUtil[podOf[i]] > cfg.PodOverloadUtil {
					d := weights[i] * 0.25
					newWeights[i] -= d
					moved += d
				} else if podUtil[podOf[i]] < cfg.PodUnderloadUtil {
					coldIdx = append(coldIdx, i)
				}
			}
			if moved <= 0 || len(coldIdx) == 0 {
				continue
			}
			per := moved / float64(len(coldIdx))
			for _, i := range coldIdx {
				newWeights[i] += per
			}
			vip := vip
			nw := newWeights
			shifted := moved
			cold := len(coldIdx)
			swID := sw.ID
			cid := g.p.decide(KnobRIPWeights, viprip.PriorityNormal,
				trace.VIP(vip), trace.SwitchRef(swID))
			onApplied := func() {
				g.p.Cfg.Trace.Record(trace.EvWeightShift, shifted, float64(cold),
					trace.VIP(vip), trace.SwitchRef(swID))
				g.InterPodAdjusts++
				g.p.Propagate()
			}
			if g.p.VIPRIP.Serialized() {
				// The serialized pipeline models the reconfiguration
				// latency as the request's service time, so no extra
				// After here — queue wait comes on top of it.
				app, _ := sw.AppOf(vip)
				g.p.withCause(cid, func() {
					g.p.ctrl.Call(ctrlplane.Global, ctrlplane.CSM, "inter-pod-weights", func() {
						g.p.VIPRIP.Submit(&viprip.Request{
							Op: viprip.OpAdjustWeights, App: app,
							Priority: viprip.PriorityNormal,
							VIP:      vip, Weights: nw,
							OnDone: func(r *viprip.Request) {
								if r.Err == nil {
									onApplied()
								}
							},
						})
					})
				})
				continue
			}
			g.p.Eng.After(cfg.SwitchReconfigLatency, func() {
				g.p.withCause(cid, func() {
					g.p.ctrl.Call(ctrlplane.Global, ctrlplane.CSM, "inter-pod-weights", func() {
						if err := g.p.VIPRIP.AdjustWeights(vip, nw); err == nil {
							onApplied()
						}
					})
				})
			})
		}
	}
}

// ---- Knob D: dynamic application deployment ------------------------------

// deployToRelievePods replicates the hottest application of each
// overloaded pod into an underloaded pod. Deployment is the slow knob —
// VM provisioning takes minutes — so at most one deployment per hot pod
// per step keeps the "number of application deployments ... minimized".
func (g *GlobalManager) deployToRelievePods() {
	cfg := &g.p.Cfg
	for _, podID := range g.p.podOrder {
		if g.podUtil(podID) <= cfg.PodOverloadUtil {
			continue
		}
		app, ok := g.hottestApp(podID)
		if !ok || g.pendingDeploy[app] {
			continue
		}
		target, ok := g.coldestPodWithRoom(uint64(app), podID, g.p.appSlice[app])
		if !ok {
			continue
		}
		vip := g.hottestVIPOfApp(app, podID)
		g.pendingDeploy[app] = true
		cid := g.p.decide(KnobAppDeployment, viprip.PriorityNormal,
			trace.App(app), trace.Pod(target), trace.VIP(vip))
		g.p.Eng.After(cfg.VMDeployLatency, func() {
			delete(g.pendingDeploy, app)
			g.p.withCause(cid, func() {
				g.p.ctrl.Call(ctrlplane.Global, ctrlplane.Pod(int(target)), "deploy", func() {
					if vm, err := g.p.DeployInstanceFor(app, target, vip); err == nil {
						g.p.Cfg.Trace.Record(trace.EvDeploy, float64(vm.ID), 0,
							trace.App(app), trace.Pod(target), trace.VIP(vip))
						g.Deployments++
						g.p.Propagate()
					}
				})
			})
		})
	}
}

// removeIdleInstances prunes instances of under-utilized applications
// that cover many pods: a VM serving (almost) nothing whose application
// is fully satisfied is removed, freeing capacity and shrinking pod
// managers' decision spaces.
func (g *GlobalManager) removeIdleInstances() {
	for _, app := range g.p.Cluster.AppIDs() {
		a := g.p.Cluster.App(app)
		if a.NumInstances() <= g.p.Cfg.VIPsPerApp { // keep a floor of instances
			continue
		}
		if g.p.AppSatisfaction(app) < 0.999 {
			continue
		}
		for _, vmID := range a.VMIDs() {
			vm := g.p.Cluster.VM(vmID)
			if vm.State == cluster.VMRunning && vm.Demand.CPU < 1e-6 && a.NumInstances() > g.p.Cfg.VIPsPerApp {
				vmID := vmID
				cid := g.p.decide(KnobAppDeployment, viprip.PriorityLow,
					trace.App(app), trace.VM(vmID))
				g.p.Eng.After(g.p.Cfg.SwitchReconfigLatency, func() {
					g.p.withCause(cid, func() {
						g.p.ctrl.Call(ctrlplane.Global, ctrlplane.CSM, "remove-instance", func() {
							if g.p.Cluster.VM(vmID) == nil {
								return
							}
							if err := g.p.RemoveInstance(vmID); err == nil {
								g.Removals++
								g.p.Propagate()
							}
						})
					})
				})
				break // at most one removal per app per step
			}
		}
	}
}

// ---- Knob C: server transfer between pods --------------------------------

// transferServersToRelievePods vacates a server in an underloaded donor
// pod (migrating its VMs to the donor's other servers) and hands it to
// the overloaded pod.
func (g *GlobalManager) transferServersToRelievePods() {
	cfg := &g.p.Cfg
	for _, podID := range g.p.podOrder {
		if g.podUtil(podID) <= cfg.PodOverloadUtil {
			continue
		}
		donor, ok := g.pickDonorPod(podID)
		if !ok {
			continue
		}
		srv, ok := g.pickServerToVacate(donor)
		if !ok {
			continue
		}
		g.vacateAndTransfer(srv, donor, podID)
	}
}

// pickDonorPod selects a pod below the underload threshold (other
// than the recipient) to donate a server, via the steering policy.
func (g *GlobalManager) pickDonorPod(recipient cluster.PodID) (cluster.PodID, bool) {
	cfg := &g.p.Cfg
	g.podCand, g.podLoad = g.podCand[:0], g.podLoad[:0]
	for _, id := range g.p.podOrder {
		if id == recipient {
			continue
		}
		if u := g.podUtil(id); u < cfg.PodUnderloadUtil {
			g.podCand = append(g.podCand, id)
			g.podLoad = append(g.podLoad, u)
		}
	}
	return g.steerPod(uint64(recipient), g.p.pol.Steering.DonorPod)
}

// pickServerToVacate chooses the donor server with the fewest VMs whose
// VMs can all be rehomed within the donor pod.
func (g *GlobalManager) pickServerToVacate(donor cluster.PodID) (cluster.ServerID, bool) {
	pd := g.p.Cluster.Pod(donor)
	if pd == nil || pd.NumServers() <= 1 {
		return 0, false
	}
	best := cluster.ServerID(-1)
	bestVMs := 0
	for _, sid := range pd.ServerIDs() {
		if g.pendingServer[sid] {
			continue
		}
		srv := g.p.Cluster.Server(sid)
		if !srv.Serving() {
			continue
		}
		if best == cluster.ServerID(-1) || srv.NumVMs() < bestVMs {
			best, bestVMs = sid, srv.NumVMs()
		}
	}
	if best == cluster.ServerID(-1) {
		return 0, false
	}
	return best, true
}

// vacateAndTransfer migrates every VM off the server (within the donor
// pod), then transfers the empty server to the recipient pod. If any VM
// cannot be rehomed the transfer is abandoned (already-moved VMs stay at
// their new homes; they remain inside the donor pod).
func (g *GlobalManager) vacateAndTransfer(srv cluster.ServerID, donor, recipient cluster.PodID) {
	g.pendingServer[srv] = true
	server := g.p.Cluster.Server(srv)
	nVMs := server.NumVMs()
	latency := g.p.Cfg.VacateLatencyPerVM*float64(nVMs) + g.p.Cfg.VMMigrateLatency
	cid := g.p.decide(KnobServerTransfer, viprip.PriorityNormal,
		trace.Server(srv), trace.Pod(donor), trace.Pod(recipient))
	g.p.Eng.After(latency, func() {
		delete(g.pendingServer, srv)
		g.p.withCause(cid, func() {
			g.p.ctrl.Call(ctrlplane.Global, ctrlplane.Pod(int(donor)), "server-transfer", func() {
				server := g.p.Cluster.Server(srv)
				if server == nil || server.Pod != donor {
					return
				}
				for _, vmID := range server.VMIDs() {
					vm := g.p.Cluster.VM(vmID)
					dst := g.rehomeTarget(donor, srv, vm.Slice)
					if dst == cluster.ServerID(-1) {
						return // cannot fully vacate; abandon
					}
					if err := g.p.Cluster.MigrateVM(vmID, dst); err != nil {
						return
					}
				}
				if err := g.p.Cluster.TransferServer(srv, recipient); err == nil {
					g.p.Cfg.Trace.Record(trace.EvServerTransfer, float64(nVMs), 0,
						trace.Server(srv), trace.Pod(donor), trace.Pod(recipient))
					g.ServerTransfers++
					g.p.Propagate()
				}
			})
		})
	})
}

// rehomeTarget finds a server in pod (≠ excluded) that fits slice.
func (g *GlobalManager) rehomeTarget(pod cluster.PodID, exclude cluster.ServerID, slice cluster.Resources) cluster.ServerID {
	pd := g.p.Cluster.Pod(pod)
	best := cluster.ServerID(-1)
	var bestFree float64
	for _, sid := range pd.ServerIDs() {
		if sid == exclude {
			continue
		}
		s := g.p.Cluster.Server(sid)
		if !s.Serving() || !s.Used().Add(slice).Fits(s.Capacity) {
			continue
		}
		if best == cluster.ServerID(-1) || s.Free().CPU > bestFree {
			best, bestFree = sid, s.Free().CPU
		}
	}
	return best
}

// ---- Elephant-pod guard ---------------------------------------------------

// guardElephantPods keeps every pod's size within the configured limits
// by transferring servers *along with their deployed instances* out of
// oversized pods into the smallest pods — the Section IV-C/D mitigation
// that protects pod managers' decision time.
func (g *GlobalManager) guardElephantPods() {
	cfg := &g.p.Cfg
	for _, podID := range g.p.podOrder {
		pd := g.p.Cluster.Pod(podID)
		for pd.NumServers() > cfg.MaxPodServers || g.p.Cluster.PodNumVMs(podID) > cfg.MaxPodVMs {
			srvIDs := pd.ServerIDs()
			if len(srvIDs) <= 1 {
				break
			}
			// Move the server with the most VMs (shrinks the VM count
			// fastest) — with its instances — but only to a pod that
			// stays within its own limits after the move; otherwise the
			// guard would just ping-pong the overflow.
			best := srvIDs[0]
			bestVMs := -1
			for _, sid := range srvIDs {
				srv := g.p.Cluster.Server(sid)
				if !srv.Serving() {
					continue
				}
				if n := srv.NumVMs(); n > bestVMs {
					best, bestVMs = sid, n
				}
			}
			if bestVMs < 0 {
				break
			}
			target := g.elephantTarget(podID, bestVMs)
			if target == cluster.NoPod {
				break
			}
			cid := g.p.decide(KnobServerTransfer, viprip.PriorityHigh,
				trace.Server(best), trace.Pod(podID), trace.Pod(target))
			if err := g.p.Cluster.TransferServer(best, target); err != nil {
				break
			}
			g.p.withCause(cid, func() {
				g.p.Cfg.Trace.Record(trace.EvServerTransfer, float64(bestVMs), 1,
					trace.Server(best), trace.Pod(podID), trace.Pod(target))
			})
			g.ElephantMoves++
		}
	}
	g.p.Propagate()
}

// elephantTarget returns the smallest pod (by servers) that can accept
// one more server carrying movedVMs VMs without itself exceeding limits.
func (g *GlobalManager) elephantTarget(exclude cluster.PodID, movedVMs int) cluster.PodID {
	cfg := &g.p.Cfg
	best := cluster.NoPod
	bestN := 0
	for _, id := range g.p.podOrder {
		if id == exclude {
			continue
		}
		pd := g.p.Cluster.Pod(id)
		if pd.NumServers()+1 > cfg.MaxPodServers {
			continue
		}
		if g.p.Cluster.PodNumVMs(id)+movedVMs > cfg.MaxPodVMs {
			continue
		}
		if n := pd.NumServers(); best == cluster.NoPod || n < bestN {
			best, bestN = id, n
		}
	}
	return best
}

// hottestVIPOfApp returns the VIP served by the app's worst-overloaded
// VM in the pod, so a relieving deployment adds capacity where the
// demand actually arrives. Empty when nothing is overloaded.
func (g *GlobalManager) hottestVIPOfApp(app cluster.AppID, pod cluster.PodID) lbswitch.VIP {
	var vip lbswitch.VIP
	worst := 1.0
	for _, vmID := range g.p.Cluster.AppVMsInPod(app, pod) {
		vm := g.p.Cluster.VM(vmID)
		if ov := vm.Overload(); ov > worst {
			if rip, ok := g.p.RIPForVM(vmID); ok {
				if v, ok := g.p.VIPOfRIP(rip); ok {
					vip, worst = v, ov
				}
			}
		}
	}
	return vip
}

// hottestApp returns the application with the highest CPU demand inside
// the pod.
func (g *GlobalManager) hottestApp(pod cluster.PodID) (cluster.AppID, bool) {
	pd := g.p.Cluster.Pod(pod)
	if pd == nil {
		return 0, false
	}
	demand := make(map[cluster.AppID]float64)
	for _, sid := range pd.ServerIDs() {
		srv := g.p.Cluster.Server(sid)
		for _, vmID := range srv.VMIDs() {
			vm := g.p.Cluster.VM(vmID)
			demand[vm.App] += vm.Demand.CPU
		}
	}
	best := cluster.AppID(-1)
	var bestD float64
	for app, d := range demand {
		if best == cluster.AppID(-1) || d > bestD || (d == bestD && app < best) {
			best, bestD = app, d
		}
	}
	return best, best != cluster.AppID(-1)
}

// coldestPodWithRoom selects a pod (≠ exclude) below the underload
// threshold with room for slice, via the steering policy — the
// default greedy takes the least-utilized, as the historical scan did.
// The underload threshold and the room check are feasibility, not
// preference, so they stay here for every policy.
func (g *GlobalManager) coldestPodWithRoom(actor uint64, exclude cluster.PodID, slice cluster.Resources) (cluster.PodID, bool) {
	cfg := &g.p.Cfg
	g.podCand, g.podLoad = g.podCand[:0], g.podLoad[:0]
	for _, id := range g.p.podOrder {
		if id == exclude {
			continue
		}
		if g.p.emptiestServer(id, slice) == nil {
			continue
		}
		if u := g.podUtil(id); u < cfg.PodUnderloadUtil {
			g.podCand = append(g.podCand, id)
			g.podLoad = append(g.podLoad, u)
		}
	}
	return g.steerPod(actor, g.p.pol.Steering.DeployPod)
}

// steerPod runs one pod-selection decision over the candidate scratch.
func (g *GlobalManager) steerPod(actor uint64, site func(policy.Decision) int) (cluster.PodID, bool) {
	if len(g.podCand) == 0 {
		return cluster.NoPod, false
	}
	cands, loads := g.podCand, g.podLoad
	idx := site(policy.Decision{
		Actor: actor,
		N:     len(cands),
		Key:   func(i int) uint64 { return uint64(cands[i]) },
		Load:  func(i int) float64 { return loads[i] },
	})
	if idx < 0 || idx >= len(cands) {
		return cluster.NoPod, false
	}
	return cands[idx], true
}
