package core

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"megadc/internal/lbswitch"
)

// buildScale constructs a scale-tier platform and sanity-checks it.
func buildScale(t testing.TB, spec ScaleSpec) *Platform {
	t.Helper()
	p, err := BuildScalePlatform(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cluster.NumVMs(); got != spec.NumVMs() {
		t.Fatalf("built %d VMs, want %d", got, spec.NumVMs())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return p
}

// steadyAllocs warms the incremental path and measures a steady tick's
// heap allocations.
func steadyAllocs(p *Platform) float64 {
	i := 0
	tick := func() { p.SteadyTick(i); i++ }
	for ; i < 8; i++ {
		p.SteadyTick(i)
	}
	return testing.AllocsPerRun(100, tick)
}

// TestScaleBulkOnboarding always runs: a small tier built through the
// bulk loader must satisfy every invariant, audit clean, serve all its
// demand, and tick the steady path without allocating.
func TestScaleBulkOnboarding(t *testing.T) {
	spec := ScaleSpecFor(500)
	p := buildScale(t, spec)
	if rep := p.Audit(); !rep.OK() {
		t.Fatalf("bulk-built platform audits dirty:\n%s", rep)
	}
	if s := p.TotalSatisfaction(); s != 1 {
		t.Fatalf("satisfaction %v, want 1 (capacity sized to fit demand)", s)
	}
	if n := steadyAllocs(p); n != 0 {
		t.Fatalf("steady tick allocates %v times, want 0", n)
	}
}

// fabricDigest renders the complete VIP/RIP configuration of every
// switch — membership, order, weights, tags, reconfig counts — as one
// comparable string.
func fabricDigest(p *Platform) string {
	var b strings.Builder
	var rips []lbswitch.RIP
	var tags []int64
	var mbps []float64
	for i := 0; i < p.Fabric.NumSwitches(); i++ {
		sw := p.Fabric.Switch(lbswitch.SwitchID(i))
		fmt.Fprintf(&b, "sw%d reconfigs=%d\n", i, sw.Reconfigs)
		for _, vip := range sw.VIPOrder() {
			rips, tags, mbps = rips[:0], tags[:0], mbps[:0]
			rips, tags, mbps, _ = sw.AppendVIPLoadShareTagged(vip, sw.VIPLoad(vip), rips, tags, mbps)
			fmt.Fprintf(&b, " %s rips=%v tags=%v mbps=%v\n", vip, rips, tags, mbps)
		}
	}
	return b.String()
}

// TestScaleOnboardWorkersIdentical pins the bulk loader's sharding
// contract: any worker count builds bit-identical state — same fabric
// configuration (down to tags and reconfig counters), same propagated
// loads, same satisfaction.
func TestScaleOnboardWorkersIdentical(t *testing.T) {
	spec := ScaleSpecFor(500)
	spec.Workers = 1
	base := buildScale(t, spec)
	baseFab := fabricDigest(base)
	baseState := base.captureState()
	for _, w := range []int{2, 3, 8} {
		spec.Workers = w
		p := buildScale(t, spec)
		if d := fabricDigest(p); d != baseFab {
			t.Fatalf("workers=%d fabric differs from workers=1", w)
		}
		if d := baseState.diff(p.captureState()); d != "" {
			t.Fatalf("workers=%d propagated state differs: %s", w, d)
		}
		if a, b := base.TotalSatisfaction(), p.TotalSatisfaction(); a != b {
			t.Fatalf("workers=%d satisfaction %v != %v", w, b, a)
		}
	}
}

// TestScaleSmoke10K is the CI scale smoke (set MEGADC_SCALE_SMOKE=1):
// the 10K-server tier constructs, audits clean, runs 100 steady ticks,
// and the steady tick stays allocation-free.
func TestScaleSmoke10K(t *testing.T) {
	if os.Getenv("MEGADC_SCALE_SMOKE") == "" {
		t.Skip("set MEGADC_SCALE_SMOKE=1 to run the 10K scale smoke")
	}
	spec := ScaleSpecFor(10_000)
	start := time.Now()
	p := buildScale(t, spec)
	t.Logf("constructed %d servers / %d apps / %d VMs in %v",
		spec.Servers, spec.Apps, spec.NumVMs(), time.Since(start))
	if rep := p.Audit(); !rep.OK() {
		t.Fatalf("10K platform audits dirty:\n%s", rep)
	}
	if n := steadyAllocs(p); n != 0 {
		t.Fatalf("steady tick allocates %v times, want 0", n)
	}
	start = time.Now()
	for i := 0; i < 100; i++ {
		p.SteadyTick(i)
	}
	t.Logf("100 steady ticks in %v", time.Since(start))
}

// TestPaperScale300K is the acceptance run (set MEGADC_PAPER_SCALE=1):
// the full paper-scale platform — 300K servers, 300K apps, 6M RIPs —
// constructs in one process and runs ≥100 steady ticks.
func TestPaperScale300K(t *testing.T) {
	if os.Getenv("MEGADC_PAPER_SCALE") == "" {
		t.Skip("set MEGADC_PAPER_SCALE=1 to run the 300K acceptance build")
	}
	spec := PaperScaleSpec()
	start := time.Now()
	p := buildScale(t, spec)
	t.Logf("constructed %d servers / %d apps / %d VMs in %v",
		spec.Servers, spec.Apps, spec.NumVMs(), time.Since(start))
	if s := p.TotalSatisfaction(); s != 1 {
		t.Fatalf("satisfaction %v, want 1", s)
	}
	start = time.Now()
	for i := 0; i < 128; i++ {
		p.SteadyTick(i)
	}
	t.Logf("128 steady ticks in %v (%v/tick)", time.Since(start), time.Since(start)/128)
	if n := steadyAllocs(p); n != 0 {
		t.Fatalf("steady tick allocates %v times, want 0", n)
	}
}
