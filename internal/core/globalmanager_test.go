package core

import (
	"math"
	"testing"

	"megadc/internal/cluster"
	"megadc/internal/metrics"
)

// TestKnobASelectiveExposureRelievesLink drives one access link past the
// overload threshold and verifies the global manager shifts DNS exposure
// to the app's other VIPs, with zero route updates (the knob's headline
// property).
func TestKnobASelectiveExposureRelievesLink(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobSelectiveExposure)
	cfg.VIPsPerApp = 4            // one VIP per link
	cfg.RecycleUnusedVIPs = false // isolate knob A's zero-route-update property
	p := newTestPlatform(t, cfg)
	app, err := p.OnboardApp("app", defaultSlice(), 4, Demand{CPU: 1, Mbps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Concentrate all exposure on one VIP → its link carries 1000 Mbps
	// (100% of capacity, above the 90% threshold).
	vips := p.DNS.VIPs(app.ID)
	if err := p.DNS.ExposeOnly(app.ID, vips[0]); err != nil {
		t.Fatal(err)
	}
	p.Propagate()
	routeUpdatesBefore := p.Net.RouteUpdates
	hotLinks := p.Net.OverloadedLinks(cfg.LinkOverloadUtil)
	if len(hotLinks) != 1 {
		t.Fatalf("setup: overloaded links = %v", hotLinks)
	}
	hot := hotLinks[0]

	g := p.Global
	// A few control iterations, letting scheduled DNS changes land.
	for i := 0; i < 5; i++ {
		g.Step()
		p.Eng.RunFor(cfg.DNSUpdateLatency + 1)
	}
	if got := p.Net.Link(hot).Utilization(); got > cfg.LinkOverloadUtil {
		t.Errorf("hot link utilization = %v, still above %v", got, cfg.LinkOverloadUtil)
	}
	if g.ExposureChanges == 0 {
		t.Error("no exposure changes recorded")
	}
	if p.Net.RouteUpdates != routeUpdatesBefore {
		t.Errorf("selective exposure issued %d route updates; want 0",
			p.Net.RouteUpdates-routeUpdatesBefore)
	}
	// Traffic is conserved: total link load still 1000.
	var total float64
	for _, l := range p.Net.LinkLoads() {
		total += l
	}
	if math.Abs(total-1000) > 1e-6 {
		t.Errorf("total link load = %v, want 1000", total)
	}
}

// TestKnobBVIPTransferRelievesSwitch overloads one LB switch and checks
// the drain-then-transfer protocol moves a VIP to an underloaded switch.
func TestKnobBVIPTransferRelievesSwitch(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobVIPTransfer)
	cfg.VIPsPerApp = 1
	p := newTestPlatform(t, cfg)
	// Two apps, both VIPs forced onto switch 0 so a transfer can help.
	a0, err := p.OnboardApp("a0", defaultSlice(), 2, Demand{CPU: 0.5, Mbps: 200})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p.OnboardApp("a1", defaultSlice(), 2, Demand{CPU: 0.5, Mbps: 200})
	if err != nil {
		t.Fatal(err)
	}
	vip0 := p.Fabric.VIPsOfApp(a0.ID)[0]
	vip1 := p.Fabric.VIPsOfApp(a1.ID)[0]
	if home, _ := p.Fabric.HomeOf(vip1); home != 0 {
		if err := p.Fabric.TransferVIP(vip1, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	if home, _ := p.Fabric.HomeOf(vip0); home != 0 {
		if err := p.Fabric.TransferVIP(vip0, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	p.Propagate()
	// Switch 0 carries 400 of 400 Mbps → overloaded.
	if u := p.Fabric.Switch(0).Utilization(); u <= cfg.SwitchOverloadUtil {
		t.Fatalf("setup: switch utilization %v not overloaded", u)
	}
	routeUpdates := p.Net.RouteUpdates

	g := p.Global
	g.Step()
	// Drain takes DNS update + TTL + margin; run well past it.
	p.Eng.RunFor(p.DNS.TTL() + 5*cfg.DrainMargin + 10)

	if g.VIPTransfers == 0 {
		t.Fatal("no VIP transfer happened")
	}
	if u := p.Fabric.Switch(0).Utilization(); u > cfg.SwitchOverloadUtil {
		t.Errorf("switch 0 still overloaded: %v", u)
	}
	// Every VIP is exposed again after its transfer completes.
	for _, app := range []cluster.AppID{a0.ID, a1.ID} {
		vips, ws, _ := p.DNS.Weights(app)
		for i := range vips {
			if ws[i] == 0 {
				t.Errorf("app %d VIP %s left unexposed", app, vips[i])
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if p.Net.RouteUpdates != routeUpdates {
		t.Errorf("VIP transfer touched routing: %d updates", p.Net.RouteUpdates-routeUpdates)
	}
}

// TestKnobCServerTransfer drives one pod hot and verifies a server moves
// from an underloaded donor pod.
func TestKnobCServerTransfer(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobServerTransfer)
	topo := SmallTopology()
	topo.Pods = 2
	topo.ServersPerPod = 4
	p, err := NewPlatform(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All instances in pod 0 (deploy directly), demand > overload.
	app, err := p.OnboardApp("hot", defaultSlice(), 0, Demand{})
	if err != nil {
		t.Fatal(err)
	}
	pod0 := p.Cluster.PodIDs()[0]
	for i := 0; i < 4; i++ {
		if _, err := p.DeployInstance(app.ID, pod0); err != nil {
			t.Fatal(err)
		}
	}
	// Pod 0 capacity = 4×8 = 32 CPU; demand 30 → util 0.94 > 0.85.
	p.SetAppDemand(app.ID, Demand{CPU: 30, Mbps: 100})
	if u := p.Pod(pod0).Utilization(); u <= cfg.PodOverloadUtil {
		t.Fatalf("setup: pod util %v", u)
	}
	g := p.Global
	g.Step()
	p.Eng.RunFor(cfg.VacateLatencyPerVM*4 + cfg.VMMigrateLatency + 10)
	if g.ServerTransfers == 0 {
		t.Fatal("no server transferred")
	}
	if got := p.Cluster.Pod(pod0).NumServers(); got != 5 {
		t.Errorf("hot pod has %d servers, want 5", got)
	}
	// Utilization dropped.
	if u := p.Pod(pod0).Utilization(); u >= 0.94 {
		t.Errorf("pod util after transfer = %v", u)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestKnobDDeployment verifies the global manager replicates a hot pod's
// hottest app into a cold pod.
func TestKnobDDeployment(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobAppDeployment)
	topo := SmallTopology()
	topo.Pods = 2
	topo.ServersPerPod = 2
	p, err := NewPlatform(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := p.OnboardApp("hot", defaultSlice(), 0, Demand{})
	if err != nil {
		t.Fatal(err)
	}
	pod0 := p.Cluster.PodIDs()[0]
	pod1 := p.Cluster.PodIDs()[1]
	p.DeployInstance(app.ID, pod0)
	p.DeployInstance(app.ID, pod0)
	p.SetAppDemand(app.ID, Demand{CPU: 15, Mbps: 100}) // 15/16 util in pod0
	if p.Cluster.Covers(app.ID, pod1) {
		t.Fatal("setup: app already covers pod1")
	}
	g := p.Global
	g.Step()
	p.Eng.RunFor(cfg.VMDeployLatency + 10)
	if g.Deployments == 0 {
		t.Fatal("no deployment happened")
	}
	if !p.Cluster.Covers(app.ID, pod1) {
		t.Error("app does not cover the cold pod after deployment")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestKnobFInterPodWeights verifies weight moves from RIPs in a hot pod
// to RIPs in a cold pod under a shared VIP, preserving the total.
func TestKnobFInterPodWeights(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobRIPWeights)
	cfg.VIPsPerApp = 1
	topo := SmallTopology()
	topo.Pods = 2
	topo.ServersPerPod = 2
	p, err := NewPlatform(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := p.OnboardApp("app", defaultSlice(), 2, Demand{})
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin onboarding put one instance in each pod. Make pod 0
	// hot with a second, dedicated app.
	pod0 := p.Cluster.PodIDs()[0]
	heavy, err := p.OnboardApp("heavy", defaultSlice(), 0, Demand{})
	if err != nil {
		t.Fatal(err)
	}
	p.DeployInstance(heavy.ID, pod0)
	p.SetAppDemand(heavy.ID, Demand{CPU: 15, Mbps: 10}) // pod0 util 15/16
	p.SetAppDemand(app.ID, Demand{CPU: 1, Mbps: 100})

	vip := p.Fabric.VIPsOfApp(app.ID)[0]
	home, _ := p.Fabric.HomeOf(vip)
	sw := p.Fabric.Switch(home)
	_, before, _ := sw.Weights(vip)
	totalBefore := before[0] + before[1]

	g := p.Global
	g.Step()
	p.Eng.RunFor(cfg.SwitchReconfigLatency + 1)

	rips, after, _ := sw.Weights(vip)
	totalAfter := after[0] + after[1]
	if math.Abs(totalAfter-totalBefore) > 1e-6 {
		t.Errorf("total weight %v -> %v; must be preserved", totalBefore, totalAfter)
	}
	if g.InterPodAdjusts == 0 {
		t.Fatal("no inter-pod adjustment")
	}
	// The RIP in the hot pod lost weight.
	for i, rip := range rips {
		vmID, _ := p.VMForRIP(rip)
		vm := p.Cluster.VM(vmID)
		srv := p.Cluster.Server(vm.Server)
		if srv.Pod == pod0 && after[i] >= before[i] {
			t.Errorf("hot-pod RIP weight %v -> %v; should decrease", before[i], after[i])
		}
		if srv.Pod != pod0 && after[i] <= before[i] {
			t.Errorf("cold-pod RIP weight %v -> %v; should increase", before[i], after[i])
		}
	}
}

// TestElephantGuard verifies oversized pods shed servers (with their
// instances) to the smallest pod.
func TestElephantGuard(t *testing.T) {
	cfg := testConfig().WithKnobs() // knobs off; guard on
	cfg.ElephantGuard = true
	cfg.MaxPodServers = 3
	topo := SmallTopology()
	topo.Pods = 2
	topo.ServersPerPod = 2
	p, err := NewPlatform(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pods := p.Cluster.PodIDs()
	// Grow pod 0 to 5 servers by transferring from pod 1 manually.
	for _, sid := range p.Cluster.Pod(pods[1]).ServerIDs() {
		p.Cluster.TransferServer(sid, pods[0])
		break
	}
	// 3 more fresh servers into pod 0.
	for i := 0; i < 2; i++ {
		if _, err := p.Cluster.AddServer(pods[0], SmallTopology().ServerCapacity); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Cluster.Pod(pods[0]).NumServers(); got != 5 {
		t.Fatalf("setup: pod0 has %d servers", got)
	}
	g := p.Global
	g.Step()
	if got := p.Cluster.Pod(pods[0]).NumServers(); got > cfg.MaxPodServers {
		t.Errorf("pod0 still has %d servers, limit %d", got, cfg.MaxPodServers)
	}
	if g.ElephantMoves == 0 {
		t.Error("no elephant moves recorded")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestElephantGuardVMLimit verifies the VM-count limit also triggers.
func TestElephantGuardVMLimit(t *testing.T) {
	cfg := testConfig().WithKnobs()
	cfg.ElephantGuard = true
	cfg.MaxPodVMs = 4
	topo := SmallTopology()
	topo.Pods = 2
	topo.ServersPerPod = 3
	p, err := NewPlatform(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := p.OnboardApp("a", defaultSlice(), 0, Demand{})
	if err != nil {
		t.Fatal(err)
	}
	pod0 := p.Cluster.PodIDs()[0]
	pod1 := p.Cluster.PodIDs()[1]
	for i := 0; i < 6; i++ {
		if _, err := p.DeployInstance(app.ID, pod0); err != nil {
			t.Fatal(err)
		}
	}
	p.Global.Step()
	if got := p.Cluster.PodNumVMs(pod0); got > cfg.MaxPodVMs {
		t.Errorf("pod0 has %d VMs, limit %d", got, cfg.MaxPodVMs)
	}
	if got := p.Cluster.PodNumVMs(pod1); got > cfg.MaxPodVMs {
		t.Errorf("guard pushed pod1 over the limit: %d VMs", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestRemoveIdleInstances verifies satisfied apps with idle instances
// get pruned down (but never below the VIPsPerApp floor).
func TestRemoveIdleInstances(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobAppDeployment)
	p := newTestPlatform(t, cfg)
	app, err := p.OnboardApp("a", defaultSlice(), 6, Demand{CPU: 0.5, Mbps: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Concentrate demand on one VIP so the others' VMs idle.
	vips := p.DNS.VIPs(app.ID)
	p.DNS.ExposeOnly(app.ID, vips[0])
	p.Propagate()
	for i := 0; i < 8; i++ {
		p.Global.Step()
		p.Eng.RunFor(cfg.SwitchReconfigLatency + 1)
	}
	if got := app.NumInstances(); got >= 6 {
		t.Errorf("instances = %d; idle instances not pruned", got)
	}
	if got := app.NumInstances(); got < cfg.VIPsPerApp {
		t.Errorf("instances = %d fell below floor %d", got, cfg.VIPsPerApp)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestFullLoopConvergence runs everything together: a flash crowd on one
// app, all knobs on, and checks the platform converges to balanced,
// satisfied state.
func TestFullLoopConvergence(t *testing.T) {
	cfg := testConfig()
	p := newTestPlatform(t, cfg)
	var apps []*cluster.Application
	for i := 0; i < 4; i++ {
		a, err := p.OnboardApp("app", defaultSlice(), 2, Demand{CPU: 1, Mbps: 50})
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, a)
	}
	p.Start()
	p.Eng.RunUntil(100)
	// Flash crowd: app 0 demand ×12.
	p.SetAppDemand(apps[0].ID, Demand{CPU: 12, Mbps: 600})
	p.Eng.RunUntil(1500)

	if got := p.TotalSatisfaction(); got < 0.95 {
		t.Errorf("total satisfaction = %v after convergence", got)
	}
	for _, l := range p.Net.Links() {
		if l.Utilization() > 1.0 {
			t.Errorf("link %d still overloaded: %v", l.ID, l.Utilization())
		}
	}
	if imb := metrics.Imbalance(p.Fabric.Utilizations()); imb > 3.5 {
		t.Errorf("switch imbalance = %v", imb)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestDrainBlockedByConnectionsForces creates tracked connections on a
// draining VIP so the transfer must retry and finally force.
func TestDrainBlockedByConnectionsForces(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobVIPTransfer)
	cfg.VIPsPerApp = 1
	p := newTestPlatform(t, cfg)
	a0, err := p.OnboardApp("a0", defaultSlice(), 1, Demand{CPU: 0.5, Mbps: 200})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p.OnboardApp("a1", defaultSlice(), 1, Demand{CPU: 0.5, Mbps: 200})
	if err != nil {
		t.Fatal(err)
	}
	// Co-locate both VIPs on switch 0 → 400/400 Mbps, overloaded, and a
	// transfer of either VIP helps.
	for _, app := range []cluster.AppID{a0.ID, a1.ID} {
		vip := p.Fabric.VIPsOfApp(app)[0]
		if home, _ := p.Fabric.HomeOf(vip); home != 0 {
			if err := p.Fabric.TransferVIP(vip, 0, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	p.Propagate()
	// Open sticky connections on both VIPs (extreme TTL violators).
	for _, app := range []cluster.AppID{a0.ID, a1.ID} {
		vip := p.Fabric.VIPsOfApp(app)[0]
		if _, _, err := p.Fabric.Switch(0).OpenConn(vip, p.Rand()); err != nil {
			t.Fatal(err)
		}
	}
	p.Global.Step()
	p.Eng.RunFor(p.DNS.TTL() + 10*cfg.DrainMargin + 20)
	if p.Global.VIPTransfers == 0 {
		t.Fatal("no forced transfer happened")
	}
	if p.Global.DrainForceBreaks == 0 {
		t.Error("no force-broken connections recorded")
	}
	if u := p.Fabric.Switch(0).Utilization(); u > cfg.SwitchOverloadUtil {
		t.Errorf("switch 0 still overloaded: %v", u)
	}
}
