package core

import (
	"math"
	"testing"

	"megadc/internal/cluster"
)

// singlePodPlatform builds a platform with one app whose VMs all live in
// pod 0, with the given demand, and all knobs configured per cfg.
func singlePodPlatform(t *testing.T, cfg Config, instances int, demand Demand) (*Platform, *cluster.Application) {
	t.Helper()
	topo := SmallTopology()
	topo.Pods = 1
	topo.ServersPerPod = 8
	p, err := NewPlatform(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := p.OnboardApp("app", defaultSlice(), instances, demand)
	if err != nil {
		t.Fatal(err)
	}
	return p, app
}

func TestKnobEGrowsOverloadedVM(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobVMResize)
	// 1 instance with 1-core slice, demand 3 cores → resize should grow.
	p, app := singlePodPlatform(t, cfg, 1, Demand{CPU: 3, Mbps: 100})
	pm := p.PodManagers()[0]
	vmID := app.VMIDs()[0]
	before := p.Cluster.VM(vmID).Slice.CPU
	pm.Step()
	p.Eng.RunFor(cfg.VMResizeLatency + 1)
	after := p.Cluster.VM(vmID).Slice.CPU
	if after <= before {
		t.Fatalf("slice CPU %v -> %v; knob E did not grow", before, after)
	}
	want := 3 * (1 + cfg.VMHeadroom)
	if math.Abs(after-want) > 1e-6 {
		t.Errorf("slice = %v, want %v (demand × headroom)", after, want)
	}
	if pm.Resizes == 0 {
		t.Error("Resizes counter not incremented")
	}
	if got := p.AppSatisfaction(app.ID); math.Abs(got-1) > 1e-9 {
		t.Errorf("satisfaction after resize = %v", got)
	}
}

func TestKnobEShrinksIdleVM(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobVMResize)
	p, app := singlePodPlatform(t, cfg, 1, Demand{CPU: 3, Mbps: 100})
	pm := p.PodManagers()[0]
	vmID := app.VMIDs()[0]
	pm.Step()
	p.Eng.RunFor(cfg.VMResizeLatency + 1)
	grown := p.Cluster.VM(vmID).Slice.CPU
	// Demand drops; slice should shrink back to the app default.
	p.SetAppDemand(app.ID, Demand{CPU: 0.1, Mbps: 10})
	pm.Step()
	p.Eng.RunFor(cfg.VMResizeLatency + 1)
	shrunk := p.Cluster.VM(vmID).Slice.CPU
	if shrunk >= grown {
		t.Fatalf("slice %v -> %v; knob E did not shrink", grown, shrunk)
	}
	if math.Abs(shrunk-defaultSlice().CPU) > 1e-6 {
		t.Errorf("shrunk to %v, want default %v", shrunk, defaultSlice().CPU)
	}
}

func TestKnobEDisabledDoesNothing(t *testing.T) {
	cfg := testConfig().WithKnobs() // everything off
	p, app := singlePodPlatform(t, cfg, 1, Demand{CPU: 3, Mbps: 100})
	pm := p.PodManagers()[0]
	vmID := app.VMIDs()[0]
	before := p.Cluster.VM(vmID).Slice
	pm.Step()
	p.Eng.RunFor(60)
	if p.Cluster.VM(vmID).Slice != before {
		t.Error("disabled knob E still resized")
	}
	if pm.Resizes != 0 {
		t.Error("Resizes counted with knob off")
	}
}

func TestKnobFIntraPodWeights(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobRIPWeights)
	cfg.VIPsPerApp = 1 // single VIP so both RIPs share it
	p, err := NewPlatform(func() Topology { tp := SmallTopology(); tp.Pods = 1; return tp }(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := p.OnboardApp("app", defaultSlice(), 2, Demand{CPU: 2, Mbps: 200})
	if err != nil {
		t.Fatal(err)
	}
	// Give one VM a bigger slice: weights should shift toward it.
	vms := app.VMIDs()
	if err := p.Cluster.ResizeVM(vms[0], cluster.Resources{CPU: 3, MemMB: 1024, NetMbps: 300}); err != nil {
		t.Fatal(err)
	}
	vip := p.Fabric.VIPsOfApp(app.ID)[0]
	home, _ := p.Fabric.HomeOf(vip)
	sw := p.Fabric.Switch(home)
	_, before, _ := sw.Weights(vip)
	totalBefore := before[0] + before[1]

	pm := p.PodManagers()[0]
	pm.Step()
	p.Eng.RunFor(cfg.SwitchReconfigLatency + 1)

	rips, after, _ := sw.Weights(vip)
	if len(rips) != 2 {
		t.Fatalf("rips = %v", rips)
	}
	totalAfter := after[0] + after[1]
	if math.Abs(totalAfter-totalBefore) > 1e-6 {
		t.Errorf("total weight changed %v -> %v; must be preserved", totalBefore, totalAfter)
	}
	// The VM with 3 CPU should get 3× the weight of the 1-CPU VM.
	bigIdx := 0
	rip0VM, _ := p.VMForRIP(rips[0])
	if rip0VM != vms[0] {
		bigIdx = 1
	}
	ratio := after[bigIdx] / after[1-bigIdx]
	if math.Abs(ratio-3) > 0.01 {
		t.Errorf("weight ratio = %v, want 3 (capacity-proportional)", ratio)
	}
	if pm.WeightAdjusts == 0 {
		t.Error("WeightAdjusts counter not incremented")
	}
}

func TestLocalScaleOutDeploysInstance(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobAppDeployment)
	p, app := singlePodPlatform(t, cfg, 1, Demand{CPU: 4, Mbps: 100})
	pm := p.PodManagers()[0]
	if app.NumInstances() != 1 {
		t.Fatal("setup")
	}
	pm.Step()
	p.Eng.RunFor(cfg.VMDeployLatency + 1)
	if app.NumInstances() != 2 {
		t.Fatalf("instances = %d, want 2 after local scale-out", app.NumInstances())
	}
	if pm.LocalDeploys != 1 {
		t.Errorf("LocalDeploys = %d", pm.LocalDeploys)
	}
	// Repeated steps keep scaling until overload clears.
	for i := 0; i < 6; i++ {
		pm.Step()
		p.Eng.RunFor(cfg.VMDeployLatency + 1)
	}
	if got := p.AppSatisfaction(app.ID); got < 0.99 {
		t.Errorf("satisfaction after scale-out = %v", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDefragmentUnblocksGrowth(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobVMResize)
	cfg.VIPsPerApp = 1
	topo := SmallTopology()
	topo.Pods = 1
	topo.ServersPerPod = 2
	p, err := NewPlatform(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fill server 0 completely: a 7-CPU blocker VM plus the 1-CPU app VM.
	blockApp, err := p.OnboardApp("blocker", cluster.Resources{CPU: 7, MemMB: 1024, NetMbps: 100}, 0, Demand{})
	if err != nil {
		t.Fatal(err)
	}
	srv0 := p.Cluster.PodIDs()[0]
	_ = srv0
	servers := p.Cluster.Pod(p.Cluster.PodIDs()[0]).ServerIDs()
	blocker, err := p.Cluster.PlaceVM(blockApp.ID, servers[0], cluster.Resources{CPU: 7, MemMB: 1024, NetMbps: 100})
	if err != nil {
		t.Fatal(err)
	}
	p.Cluster.Start(blocker.ID)
	hot, err := p.OnboardApp("hot", defaultSlice(), 0, Demand{})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := p.Cluster.PlaceVM(hot.ID, servers[0], defaultSlice())
	if err != nil {
		t.Fatal(err)
	}
	p.Cluster.Start(vm.ID)
	rip, _ := p.VIPRIP.AllocRIP()
	p.VIPRIP.AddRIP(hot.ID, rip, 1, "")
	// Hand-wire the RIP↔VM mapping (bypassing DeployInstance on purpose
	// to pin the VM to the full server).
	vm.Demand = cluster.Resources{CPU: 4}
	if free := p.Cluster.Server(servers[0]).Free().CPU; free > 1e-9 {
		t.Fatalf("setup: server 0 has %v free CPU", free)
	}
	pm := p.PodManagers()[0]
	// Step 1: growth blocked; defrag migrates the smaller VM... the
	// victim is the smallest movable VM, which is the hot one itself —
	// moving it to the empty server also unblocks it.
	pm.Step()
	p.Eng.RunFor(cfg.VMMigrateLatency + 1)
	if pm.Defrags != 1 {
		t.Fatalf("Defrags = %d, want 1", pm.Defrags)
	}
	// After migration, a further step grows the slice on the new server.
	vm.Demand = cluster.Resources{CPU: 4}
	pm.Step()
	p.Eng.RunFor(cfg.VMResizeLatency + 1)
	if got := p.Cluster.VM(vm.ID).Slice.CPU; got <= 1 {
		t.Errorf("slice after defrag+resize = %v, want > 1", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPodUtilizationMeasures(t *testing.T) {
	cfg := testConfig()
	p, _ := singlePodPlatform(t, cfg, 2, Demand{CPU: 16, Mbps: 100})
	pm := p.PodManagers()[0]
	// Pod: 8 servers × 8 CPU = 64; demand 16 → 0.25.
	if got := pm.Utilization(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("Utilization = %v, want 0.25", got)
	}
	// Slice utilization: 2 VMs × 1 CPU / 64 but mem dominates:
	// 2×1024/131072 MB; CPU 2/64 = 0.03125 is the max fraction.
	if got := pm.SliceUtilization(); got <= 0 {
		t.Errorf("SliceUtilization = %v", got)
	}
	if got := pm.DecisionSpace(); got != 8*2 {
		t.Errorf("DecisionSpace = %d, want 16", got)
	}
}

func TestBuildPlacementProblem(t *testing.T) {
	cfg := testConfig()
	p, app := singlePodPlatform(t, cfg, 3, Demand{CPU: 6, Mbps: 100})
	pm := p.PodManagers()[0]
	prob, apps, servers := pm.BuildPlacementProblem()
	if prob.NumMachines() != 8 || len(servers) != 8 {
		t.Errorf("machines = %d", prob.NumMachines())
	}
	if prob.NumApps() != 1 || apps[0] != app.ID {
		t.Errorf("apps = %v", apps)
	}
	if math.Abs(prob.AppDemand[0]-6) > 1e-9 {
		t.Errorf("demand = %v", prob.AppDemand[0])
	}
	if len(prob.Current[0]) != 3 {
		t.Errorf("current instances = %d", len(prob.Current[0]))
	}
	if err := prob.Validate(); err != nil {
		t.Errorf("problem invalid: %v", err)
	}
	elapsed, satisfied, changes := pm.RunPlacement()
	if elapsed < 0 {
		t.Error("negative elapsed")
	}
	if satisfied < 0.99 {
		t.Errorf("placement satisfied = %v", satisfied)
	}
	if changes < 0 {
		t.Errorf("changes = %d", changes)
	}
}

func TestRunPlacementEmptyPod(t *testing.T) {
	topo := SmallTopology()
	p, err := NewPlatform(topo, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, satisfied, _ := p.PodManagers()[0].RunPlacement()
	if satisfied != 1 {
		t.Errorf("empty pod satisfied = %v", satisfied)
	}
}
