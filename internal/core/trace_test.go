package core

import (
	"bytes"
	"testing"

	"megadc/internal/causal"
	"megadc/internal/cluster"
	"megadc/internal/trace"
)

// tracedConfig returns a config with a fresh flight recorder + time
// series attached.
func tracedConfig() (Config, *trace.Recorder) {
	cfg := DefaultConfig()
	rec := trace.NewRecorder(trace.DefaultRingSize)
	rec.TS = &trace.Timeseries{}
	cfg.Trace = rec
	return cfg, rec
}

// TestViolationCarriesTimeline is the flight-recorder acceptance test:
// corrupt the switch-load ledger for a VIP and require the resulting
// I4.SWITCH_LOAD_SUM violation to carry the recorded events touching
// that VIP, ending before the audit event itself.
func TestViolationCarriesTimeline(t *testing.T) {
	topo := SmallTopology()
	cfg, rec := tracedConfig()
	cfg.VIPsPerApp = 2
	p, err := NewPlatform(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.OnboardApp("flight", clusterSlice(), 3, Demand{CPU: 2, Mbps: 50})
	if err != nil {
		t.Fatal(err)
	}
	vip := p.Fabric.VIPsOfApp(a.ID)[0]
	vi := p.vipIndex(vip)
	p.fluidSwLoad.set(vi, p.fluidSwLoad.get(vi)+1) // ledger no longer matches the switch table
	rep := p.Audit()
	if rep.OK() {
		t.Fatal("corruption not detected")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Invariant != "I4.SWITCH_LOAD_SUM" {
			continue
		}
		found = true
		if len(v.Timeline) == 0 {
			t.Fatalf("violation %s has no timeline; recorder holds %d events", v.Invariant, rec.Len())
		}
		for _, ev := range v.Timeline {
			if !ev.Touches(trace.VIP(vip)) && !touchesAnyParsed(ev, v.Detail) {
				t.Errorf("timeline event %s does not touch the violating entity (%s)", ev.String(), v.Detail)
			}
			if ev.Type == trace.EvAudit {
				t.Error("timeline includes the audit event that reported it")
			}
		}
		// The violation's string form renders the timeline.
		if s := v.String(); !bytes.Contains([]byte(s), []byte("    | ")) {
			t.Errorf("String() lacks timeline lines:\n%s", s)
		}
	}
	if !found {
		t.Fatalf("no I4.SWITCH_LOAD_SUM violation:\n%s", rep)
	}
}

func touchesAnyParsed(ev trace.Event, detail string) bool {
	for _, ref := range trace.ParseRefs(detail) {
		if ev.Touches(ref) {
			return true
		}
	}
	return false
}

func clusterSlice() cluster.Resources {
	return cluster.Resources{CPU: 1, MemMB: 1024, NetMbps: 100}
}

// TestTraceSampler checks the Start-scheduled sampler fills the time
// series on the configured grid with sane values.
func TestTraceSampler(t *testing.T) {
	topo := SmallTopology()
	cfg, rec := tracedConfig()
	cfg.TraceSampleEvery = 5
	cfg.VIPsPerApp = 2
	p, err := NewPlatform(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.OnboardApp("sampled", clusterSlice(), 2, Demand{CPU: 2, Mbps: 40}); err != nil {
		t.Fatal(err)
	}
	p.Start()
	p.Eng.RunFor(60)
	if rec.TS.Len() < 12 {
		t.Fatalf("samples = %d, want >= 12 over 60s at 5s period", rec.TS.Len())
	}
	last := -1.0
	for _, s := range rec.TS.Samples {
		if s.T <= last {
			t.Fatalf("sample times not strictly increasing: %v after %v", s.T, last)
		}
		last = s.T
		if s.VIPs <= 0 || s.RIPs <= 0 {
			t.Errorf("sample at t=%v has no VIPs/RIPs: %+v", s.T, s)
		}
		if s.Satisfaction < 0 || s.Satisfaction > 1+1e-9 {
			t.Errorf("satisfaction out of range at t=%v: %v", s.T, s.Satisfaction)
		}
	}
}

// TestTracedRunDeterminism runs the seeded chaos scenario twice with
// tracing on and requires byte-identical event logs and time series —
// the guarantee that a trace from a failing run is a faithful replayable
// artifact.
func TestTracedRunDeterminism(t *testing.T) {
	const nOps = 60
	run := func() (*Platform, *trace.Recorder) {
		cfg, rec := tracedConfig()
		cfg.AuditEvery = 10
		p := runPropagationScenario(t, cfg, nOps)
		return p, rec
	}
	pa, ra := run()
	pb, rb := run()
	if d := pa.captureState().diff(pb.captureState()); d != "" {
		t.Fatalf("traced runs diverged: %s", d)
	}
	var ea, eb, ta, tb bytes.Buffer
	if err := ra.WriteEvents(&ea); err != nil {
		t.Fatal(err)
	}
	if err := rb.WriteEvents(&eb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea.Bytes(), eb.Bytes()) {
		t.Error("event logs differ across identically-seeded runs")
	}
	if ra.Total() == 0 {
		t.Error("scenario recorded no events")
	}
	if err := ra.TS.WriteCSV(&ta); err != nil {
		t.Fatal(err)
	}
	if err := rb.TS.WriteCSV(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Error("time series differ across identically-seeded runs")
	}
}

// TestTracingDoesNotPerturb runs the same seeded scenario without
// tracing, with tracing, and with tracing plus the causal
// decision-provenance assembler, and requires identical end state: the
// recorder and its observers never change a decision (EXPERIMENTS.md
// relies on this to compare traced and untraced runs).
func TestTracingDoesNotPerturb(t *testing.T) {
	const nOps = 60
	plain := DefaultConfig()
	plain.AuditEvery = 10
	a := runPropagationScenario(t, plain, nOps)
	traced, _ := tracedConfig()
	traced.AuditEvery = 10
	b := runPropagationScenario(t, traced, nOps)
	if d := a.captureState().diff(b.captureState()); d != "" {
		t.Fatalf("tracing perturbed the run: %s", d)
	}
	if sa, sb := a.TotalSatisfaction(), b.TotalSatisfaction(); sa != sb {
		t.Fatalf("satisfaction differs with tracing: %v != %v", sa, sb)
	}
	withCausal, _ := tracedConfig()
	withCausal.AuditEvery = 10
	withCausal.Causal = causal.New(nil)
	c := runPropagationScenario(t, withCausal, nOps)
	if d := a.captureState().diff(c.captureState()); d != "" {
		t.Fatalf("causal assembler perturbed the run: %s", d)
	}
	if sa, sc := a.TotalSatisfaction(), c.TotalSatisfaction(); sa != sc {
		t.Fatalf("satisfaction differs with causal assembler: %v != %v", sa, sc)
	}
	if len(withCausal.Causal.Causes()) == 0 {
		t.Fatal("causal assembler saw no decisions — scenario bypassed provenance")
	}
}
