package core

import (
	"testing"

	"megadc/internal/cluster"
	"megadc/internal/netmodel"
)

func TestFailServerRemovesVMsAndRecovers(t *testing.T) {
	cfg := testConfig()
	p := newTestPlatform(t, cfg)
	// Demand exactly fills the 4 instances, so losing one hurts.
	app, err := p.OnboardApp("a", defaultSlice(), 4, Demand{CPU: 4, Mbps: 200})
	if err != nil {
		t.Fatal(err)
	}
	victim := p.Cluster.VM(app.VMIDs()[0]).Server
	nOn := p.Cluster.Server(victim).NumVMs()
	lost, err := p.FailServer(victim)
	if err != nil {
		t.Fatal(err)
	}
	if lost != nOn {
		t.Errorf("lost %d VMs, server had %d", lost, nOn)
	}
	if app.NumInstances() != 4-lost {
		t.Errorf("instances = %d", app.NumInstances())
	}
	if !p.Cluster.Server(victim).Capacity.IsZero() {
		t.Error("dead server still has capacity")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Explicit repair restores satisfaction.
	deploys := p.RecoverLostCapacity(0.99, 8)
	if deploys == 0 {
		t.Error("no replacement deployed")
	}
	if got := p.AppSatisfaction(app.ID); got < 0.99 {
		t.Errorf("satisfaction after recovery = %v", got)
	}
	// Dead server received nothing.
	if p.Cluster.Server(victim).NumVMs() != 0 {
		t.Error("replacement placed on the dead server")
	}
	if _, err := p.FailServer(9999); err == nil {
		t.Error("failing unknown server accepted")
	}
}

func TestFailSwitchRehomesVIPs(t *testing.T) {
	cfg := testConfig()
	p := newTestPlatform(t, cfg)
	app, err := p.OnboardApp("a", defaultSlice(), 4, Demand{CPU: 2, Mbps: 200})
	if err != nil {
		t.Fatal(err)
	}
	// Pick the switch hosting the app's first VIP.
	vip := p.Fabric.VIPsOfApp(app.ID)[0]
	home, _ := p.Fabric.HomeOf(vip)
	nVIPs := p.Fabric.Switch(home).NumVIPs()
	rehomed, dropped, err := p.FailSwitch(home)
	if err != nil {
		t.Fatal(err)
	}
	if rehomed+dropped != nVIPs {
		t.Errorf("rehomed %d + dropped %d != %d VIPs", rehomed, dropped, nVIPs)
	}
	if dropped != 0 {
		t.Errorf("dropped %d VIPs despite healthy capacity", dropped)
	}
	newHome, ok := p.Fabric.HomeOf(vip)
	if !ok || newHome == home {
		t.Errorf("VIP not re-homed: %v %v", newHome, ok)
	}
	if p.Fabric.Switch(home).NumVIPs() != 0 {
		t.Error("dead switch still hosts VIPs")
	}
	// Traffic still flows: satisfaction unchanged after repropagation.
	if got := p.AppSatisfaction(app.ID); got < 0.99 {
		t.Errorf("satisfaction after switch failure = %v", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.FailSwitch(99); err == nil {
		t.Error("failing unknown switch accepted")
	}
}

func TestFailSwitchDropsWhenNoCapacity(t *testing.T) {
	// One-switch platform: failing it must drop (and hide) every VIP.
	topo := SmallTopology()
	topo.Switches = 1
	cfg := testConfig()
	p, err := NewPlatform(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := p.OnboardApp("a", defaultSlice(), 2, Demand{CPU: 1, Mbps: 100})
	if err != nil {
		t.Fatal(err)
	}
	rehomed, dropped, err := p.FailSwitch(0)
	if err != nil {
		t.Fatal(err)
	}
	if rehomed != 0 || dropped != cfg.VIPsPerApp {
		t.Errorf("rehomed/dropped = %d/%d, want 0/%d", rehomed, dropped, cfg.VIPsPerApp)
	}
	// All exposure gone: the app is dark (served 0) but consistent.
	_, ws, _ := p.DNS.Weights(app.ID)
	for _, w := range ws {
		if w != 0 {
			t.Error("dropped VIP still exposed")
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFailLinkReadvertises(t *testing.T) {
	cfg := testConfig()
	p := newTestPlatform(t, cfg)
	if _, err := p.OnboardApp("a", defaultSlice(), 4, Demand{CPU: 2, Mbps: 400}); err != nil {
		t.Fatal(err)
	}
	// Find a link carrying at least one VIP.
	var victim netmodel.LinkID = -1
	for _, l := range p.Net.Links() {
		if len(p.Net.VIPsOnLink(l.ID)) > 0 {
			victim = l.ID
			break
		}
	}
	if victim < 0 {
		t.Fatal("setup: no loaded link")
	}
	nVIPs := len(p.Net.VIPsOnLink(victim))
	updatesBefore := p.Net.RouteUpdates
	readv, err := p.FailLink(victim)
	if err != nil {
		t.Fatal(err)
	}
	if readv != nVIPs {
		t.Errorf("readvertised %d of %d VIPs", readv, nVIPs)
	}
	// Withdraw + advertise per VIP.
	if got := p.Net.RouteUpdates - updatesBefore; got != int64(2*nVIPs) {
		t.Errorf("route updates = %d, want %d", got, 2*nVIPs)
	}
	if got := len(p.Net.VIPsOnLink(victim)); got != 0 {
		t.Errorf("dead link still carries %d VIPs", got)
	}
	if p.Net.Link(victim).LoadMbps() > 1e-9 {
		t.Errorf("dead link still loaded: %v", p.Net.Link(victim).LoadMbps())
	}
	// Total carried traffic is conserved (no VIP went dark).
	var total float64
	for _, l := range p.Net.LinkLoads() {
		total += l
	}
	if total < 399 {
		t.Errorf("traffic lost after link failure: %v", total)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.FailLink(99); err == nil {
		t.Error("failing unknown link accepted")
	}
}

func TestCascadedFailuresConvergeUnderControlLoops(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	cfg := testConfig()
	p := newTestPlatform(t, cfg)
	var apps []*cluster.Application
	for i := 0; i < 4; i++ {
		a, err := p.OnboardApp("a", defaultSlice(), 3, Demand{CPU: 2, Mbps: 100})
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, a)
	}
	p.Start()
	p.Eng.RunUntil(100)
	// Kill one server, one switch, one link in sequence.
	p.Eng.At(150, func() {
		if _, err := p.FailServer(p.Cluster.ServerIDs()[0]); err != nil {
			t.Errorf("FailServer: %v", err)
		}
	})
	p.Eng.At(300, func() {
		if _, _, err := p.FailSwitch(0); err != nil {
			t.Errorf("FailSwitch: %v", err)
		}
	})
	p.Eng.At(450, func() {
		if _, err := p.FailLink(0); err != nil {
			t.Errorf("FailLink: %v", err)
		}
	})
	p.Eng.RunUntil(2400)
	if got := p.TotalSatisfaction(); got < 0.9 {
		t.Errorf("satisfaction after cascaded failures = %v", got)
	}
	for _, a := range apps {
		if got := p.AppSatisfaction(a.ID); got < 0.85 {
			t.Errorf("app %d satisfaction = %v", a.ID, got)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
