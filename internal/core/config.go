// Package core implements the paper's contribution: the two-level
// hierarchical resource-management architecture for a mega data center.
// A Platform ties together the substrates (cluster, LB switch fabric,
// access network, DNS, VIP/RIP manager); PodManagers run local resource
// allocation inside each logical pod; the GlobalManager monitors pods,
// LB switches, and access links, and actuates the paper's control knobs:
//
//	A. selective VIP exposure        (Section IV-A, via DNS weights)
//	B. dynamic VIP transfer          (Section IV-B, between LB switches)
//	C. server transfer between pods  (Section IV-C)
//	D. dynamic application deployment(Section IV-D)
//	E. VM capacity adjustment        (Section IV-E, pod-local)
//	F. RIP weight adjustment         (Section IV-F, intra- and inter-pod)
package core

import (
	"fmt"

	"megadc/internal/causal"
	"megadc/internal/ctrlplane"
	"megadc/internal/spans"
	"megadc/internal/trace"
)

// Knob identifies one of the paper's control knobs, for ablation.
type Knob int

// The control knobs of Section IV.
const (
	KnobSelectiveExposure Knob = iota // A
	KnobVIPTransfer                   // B
	KnobServerTransfer                // C
	KnobAppDeployment                 // D
	KnobVMResize                      // E
	KnobRIPWeights                    // F
	numKnobs
)

func (k Knob) String() string {
	switch k {
	case KnobSelectiveExposure:
		return "selective-vip-exposure"
	case KnobVIPTransfer:
		return "vip-transfer"
	case KnobServerTransfer:
		return "server-transfer"
	case KnobAppDeployment:
		return "app-deployment"
	case KnobVMResize:
		return "vm-resize"
	case KnobRIPWeights:
		return "rip-weight-adjust"
	}
	return fmt.Sprintf("Knob(%d)", int(k))
}

// Config holds the thresholds, latencies, and knob enables of the
// resource-management platform. Latencies are in simulated seconds and
// reflect the paper's agility claims: switch reconfiguration and VM
// resize take seconds; VM deployment and migration take minutes.
type Config struct {
	// Knob enables, indexed by Knob. All on by default.
	Knobs [numKnobs]bool

	// ElephantGuard enables the Section IV-C/D mitigation that moves
	// servers (with their instances) out of pods whose size would
	// overwhelm the pod manager.
	ElephantGuard bool

	// Pod sizing targets (Section III-A: ~5,000 servers / ~10,000 VMs).
	MaxPodServers int
	MaxPodVMs     int

	// Utilization thresholds.
	PodOverloadUtil    float64 // pod CPU demand/capacity above this → act
	PodTargetUtil      float64 // bring overloaded pods down to this
	PodUnderloadUtil   float64 // donor pods must stay below this
	LinkOverloadUtil   float64 // access-link utilization above this → knob A
	SwitchOverloadUtil float64 // LB switch utilization above this → knob B
	VMHeadroom         float64 // knob E grows slices to demand × (1+headroom)

	// Operation latencies (simulated seconds).
	SwitchReconfigLatency float64 // programmatic LB switch reconfiguration
	DNSUpdateLatency      float64 // authoritative DNS weight change
	VMResizeLatency       float64 // hot slice adjustment
	VMDeployLatency       float64 // new VM instance deployment
	VMMigrateLatency      float64 // live VM migration
	VacateLatencyPerVM    float64 // per-VM cost of vacating a server

	// Control loop periods (simulated seconds).
	PodControlInterval    float64
	GlobalControlInterval float64

	// VIPsPerApp is the default number of VIPs assigned per application
	// (Section IV-A: three on average).
	VIPsPerApp int

	// DrainMargin is how long past the DNS TTL the global manager waits
	// before attempting a VIP transfer (knob B).
	DrainMargin float64

	// CostAwareExposure extends knob A with the paper's business
	// objective ("control the traffic among the different access ISPs
	// according to ... different link usage costs"): when no link is
	// overloaded, exposure shifts from expensive links toward cheaper
	// ones, as long as the cheap link stays below CostShiftCeiling.
	CostAwareExposure bool
	CostShiftCeiling  float64

	// RecycleUnusedVIPs enables the paper's route hygiene: "the platform
	// can periodically withdraw blocks of unused VIPs from the old
	// access routers and re-advertise them through lightly loaded access
	// links." A VIP is unused when it has no DNS exposure and no
	// traffic.
	RecycleUnusedVIPs bool

	// PropagateFullEvery forces a full demand recompute every Nth
	// Propagate call as a safety net under incremental propagation.
	// 0 uses the default (256); 1 makes every Propagate a full
	// recompute; negative disables the periodic fallback entirely.
	// Because incremental propagation is bit-exact against the full
	// path, this setting changes cost, never results.
	PropagateFullEvery int

	// PropagateWorkers sets the worker count for the parallel full
	// recompute fan-out (0 = GOMAXPROCS). Results are bit-for-bit
	// identical for any worker count: workers only fill disjoint
	// per-app buffers, which are applied sequentially in sorted order.
	PropagateWorkers int

	// PropagateDebugCheck cross-checks every incremental Propagate
	// against a full recompute and panics on any bitwise state
	// difference. Test-only: it makes every tick O(platform).
	PropagateDebugCheck bool

	// AuditEvery runs the cross-layer invariant auditor (Platform.Audit,
	// DESIGN.md §9) after every Nth Propagate call. 0 disables periodic
	// auditing entirely — the hook then costs nothing. Violations
	// accumulate on the platform as structured reports (AuditViolations,
	// AuditErr); the auditor never panics.
	AuditEvery int

	// AuditOnChange audits after every single Propagate call regardless
	// of AuditEvery — the maximally strict (and slow) setting used by
	// regression tests and the CI audit job.
	AuditOnChange bool

	// AuditOverloadUtil, when positive, makes the auditor flag any link
	// or switch whose utilization exceeds it (I5.LINK_OVERLOAD /
	// I5.SWITCH_OVERLOAD). Off by default: several experiments overload
	// links on purpose (EXPERIMENTS.md E4/E9), so a blanket ceiling
	// would flag intended behavior.
	AuditOverloadUtil float64

	// Trace, when non-nil, is the flight recorder: the platform wires it
	// into every substrate (VIP/RIP manager, switch fabric, drain
	// protocol, pod/global manager decisions, health transitions) and
	// attaches per-entity event timelines to audit violation reports.
	// Nil (the default) disables tracing entirely — the disabled path
	// adds no work and no allocations to the steady-state Propagate tick
	// (guarded by BENCH_propagate.json).
	Trace *trace.Recorder

	// TraceSampleEvery is the period (simulated seconds) of the traced
	// run's time-series sampler (satisfaction, VIP/RIP counts, queue
	// depth, utilizations, fault counts). Only consulted when Trace is
	// set; 0 falls back to PodControlInterval.
	TraceSampleEvery float64

	// Spans, when non-nil, turns flight-recorder events into
	// control-plane latency histograms (queue waits, drain durations,
	// detect→repair latencies, DNS convergence — DESIGN.md §11). The
	// platform subscribes it to the recorder's OnEvent hook, creating a
	// recorder if Trace is nil. A pure observer: seeded runs end
	// byte-identical with spans on or off
	// (TestObservabilityDoesNotPerturb).
	Spans *spans.Tracker

	// Causal, when non-nil, is the decision-provenance assembler
	// (DESIGN.md §16): the platform subscribes it to the recorder's
	// OnEvent hook (creating a recorder if Trace is nil, like Spans) and
	// it reconstructs per-decision span trees — decision → RPC attempts →
	// queue wait → apply → DNS converge — keyed by CauseID. A pure
	// observer: seeded runs end byte-identical with it on or off
	// (TestTracingDoesNotPerturb), and with it wired but no decisions
	// firing the steady Propagate tick stays allocation-free.
	Causal *causal.Assembler

	// Policy selects the pluggable control policy (internal/policy,
	// DESIGN.md §15) by registry name: it drives VIP placement, RIP→VIP
	// assignment, VIP transfer targets, and the knob C/D pod choices.
	// Empty resolves to "greedy" — the extracted historical strategy,
	// byte-identical to the pre-framework inline scans. Unknown names
	// fail NewPlatform.
	Policy string

	// SerializeReconfig routes inter-pod weight adjustments (knob F) and
	// drain-driven VIP transfers (knob B) through the VIP/RIP request
	// queue as an engine-driven serialized pipeline — the paper's single
	// slow CSM configuration channel — instead of applying them inline.
	// Each request occupies the pipeline for SwitchReconfigLatency;
	// queued requests accumulate measurable queue wait. Off by default:
	// the inline path keeps historical behavior (and historical traces)
	// unchanged.
	SerializeReconfig bool

	// Ctrl configures the fallible asynchronous control plane (DESIGN.md
	// §12): when Ctrl.Enable is set, every control RPC between the global
	// manager, pod managers, and the viprip/dnsctl pipeline traverses a
	// deterministic message bus with configurable per-link delay, seeded
	// jitter, loss, duplication, and partition windows, at-least-once
	// retry with exponential backoff, idempotency keys, and typed dead
	// letters. Disabled (the default), control stays synchronous; enabled
	// with all-zero link configs, runs are byte-identical to the
	// synchronous path (TestSyncEquivalence).
	Ctrl ctrlplane.Config
}

// DefaultConfig returns the configuration used throughout the
// experiments, matching the paper's stated targets.
func DefaultConfig() Config {
	c := Config{
		ElephantGuard:         true,
		MaxPodServers:         5000,
		MaxPodVMs:             10000,
		PodOverloadUtil:       0.85,
		PodTargetUtil:         0.70,
		PodUnderloadUtil:      0.60,
		LinkOverloadUtil:      0.90,
		SwitchOverloadUtil:    0.90,
		VMHeadroom:            0.20,
		SwitchReconfigLatency: 3, // "configuring the load balancing switches takes only several seconds"
		DNSUpdateLatency:      1,
		VMResizeLatency:       2,   // hot-add is near-instant
		VMDeployLatency:       120, // VM provisioning takes minutes
		VMMigrateLatency:      30,
		VacateLatencyPerVM:    30,
		PodControlInterval:    10,
		GlobalControlInterval: 30,
		VIPsPerApp:            3,
		DrainMargin:           5,
		CostAwareExposure:     false, // opt-in: interacts with balance objectives
		CostShiftCeiling:      0.70,
		RecycleUnusedVIPs:     true,
		Ctrl:                  ctrlplane.DefaultConfig(),
	}
	for k := range c.Knobs {
		c.Knobs[k] = true
	}
	return c
}

// WithKnobs returns a copy of the config with only the listed knobs
// enabled — the ablation helper used by E7/E8.
func (c Config) WithKnobs(knobs ...Knob) Config {
	out := c
	for k := range out.Knobs {
		out.Knobs[k] = false
	}
	for _, k := range knobs {
		out.Knobs[k] = true
	}
	return out
}

// Enabled reports whether knob k is on.
func (c *Config) Enabled(k Knob) bool { return c.Knobs[k] }

// Validate checks configuration sanity.
func (c *Config) Validate() error {
	if c.MaxPodServers <= 0 || c.MaxPodVMs <= 0 {
		return fmt.Errorf("core: pod size limits must be positive")
	}
	if c.PodTargetUtil > c.PodOverloadUtil {
		return fmt.Errorf("core: PodTargetUtil %v > PodOverloadUtil %v", c.PodTargetUtil, c.PodOverloadUtil)
	}
	if c.VIPsPerApp <= 0 {
		return fmt.Errorf("core: VIPsPerApp must be positive")
	}
	if c.PodControlInterval <= 0 || c.GlobalControlInterval <= 0 {
		return fmt.Errorf("core: control intervals must be positive")
	}
	if c.AuditEvery < 0 {
		return fmt.Errorf("core: AuditEvery must be >= 0, got %d", c.AuditEvery)
	}
	if err := c.Ctrl.Validate(); err != nil {
		return err
	}
	return nil
}
