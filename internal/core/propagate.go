package core

import (
	"cmp"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"megadc/internal/cluster"
	"megadc/internal/ids"
	"megadc/internal/lbswitch"
)

// Incremental demand propagation.
//
// Propagate used to be a full-stack recompute — every VM zeroed, every
// keyed slice rebuilt and sorted, every app's DNS shares re-queried, and
// every VIP's RIP fan-out re-walked — on every manager action and demand
// tick, making a run O(events × VIPs × RIPs). This file makes the
// steady-state cost proportional to what changed instead:
//
//   - Every mutation that can shift where demand lands marks the owning
//     application dirty: SetAppDemand directly; DNS exposure changes via
//     dnsctl's OnChange hook; switch VIP/RIP/weight reconfigurations via
//     lbswitch's OnReconfig hook; route advertisements via netmodel's
//     OnRouteChange hook (resolved to an owner through vipOwner); and
//     switch/link fault-repair transitions explicitly (failures.go).
//   - Propagate recomputes only the dirty applications. For each one it
//     first undoes the app's previously applied contributions (recorded
//     in an appApplied ledger) and then applies freshly computed ones.
//   - Every value is written canonically — assigned from inputs, never
//     accumulated across Propagate calls — so the state after an
//     incremental pass is bit-for-bit identical to the state after a
//     full recompute. Link loads and switch throughput are likewise
//     canonical sums in fixed order (see netmodel.Link.LoadMbps and
//     lbswitch.Switch.ThroughputMbps). This equivalence is what lets a
//     periodic full-recompute fallback and a parallel compute phase
//     coexist with the incremental path without changing any result,
//     and it is checked exactly by Config.PropagateDebugCheck.
//
// Both the dirty path and the full path are phase-separated: a
// sequential mutation phase (undo previous contributions, refresh share
// caches, grow tables), a compute phase that only reads shared state
// and fills disjoint per-app ledgers, and a sequential apply phase in
// ascending app order. Nothing the compute phase reads is written by
// the undo or apply phases of *other* apps (each VIP and VM belongs to
// exactly one app, and compute reads exposure/placement/weights, not
// loads), so the compute phase can fan out across the worker pool on
// either path and the result stays bit-identical for any worker count —
// determinism comes from the sorted sequential apply, the same contract
// placement.ParallelPlace meets.
//
// The invariant between Propagate calls: for every VIP,
// net traffic = fluidTraffic[vip] + sessVIP[vip] and
// switch load  = fluidSwLoad[vip] + sessVIP[vip]; for every VM,
// demand = fluidVM[vm] + sessVM[vm]. SessionOpened/SessionClosed keep
// the invariant by rewriting these same expressions, so discrete
// session churn needs no dirty marking at all.

// defaultFullEvery is the period of the full-recompute safety net when
// Config.PropagateFullEvery is 0.
const defaultFullEvery = 256

// parallelThreshold is the minimum number of apps in a compute phase
// before it fans out across workers; below it the handoff overhead
// outweighs the compute.
const parallelThreshold = 64

// appliedVIP records what one Propagate wrote for one VIP of an app.
type appliedVIP struct {
	vip     ids.Index // VIP intern index
	traffic float64   // fluid Mbps set on the access network (pre-reachability)
	swLoad  float64   // fluid Mbps set on the home switch (post-reachability)
	hasHome bool
	act     bool // carried demand: counts toward the active-VIP set
}

// appliedVM records the fluid demand one Propagate added to one VM.
type appliedVM struct {
	vm  cluster.VMID
	res cluster.Resources
}

// appApplied is the per-application ledger of applied contributions;
// its slices are truncated and reused so steady-state recomputes do
// not allocate.
type appApplied struct {
	vips []appliedVIP
	vms  []appliedVM
}

func (r *appApplied) reset() {
	r.vips = r.vips[:0]
	r.vms = r.vms[:0]
}

// sharesCache holds an app's DNS expected shares with interned VIPs,
// invalidated by the DNS record generation (gen 0 = no valid cache).
// Refreshed only in sequential phases; the compute phase reads it.
type sharesCache struct {
	gen    int64
	vips   []ids.Index
	shares []float64
}

// propScratch is reusable buffer space for the RIP fan-out; each pool
// worker owns one.
type propScratch struct {
	rips []lbswitch.RIP
	tags []int64
	mbps []float64
}

// propPool is the persistent compute-phase worker pool. Workers are
// spawned once (growing to the configured width on first parallel
// pass) and parked on their start channels between passes, so a
// steady-state parallel Propagate allocates nothing.
type propPool struct {
	start  []chan struct{} // one slot per worker; send = run one pass
	wg     sync.WaitGroup
	apps   []int32 // the pass's work list, read-only during the pass
	cursor atomic.Int64
}

// insertSorted inserts v into sorted s if absent, keeping s sorted.
func insertSorted[T cmp.Ordered](s []T, v T) []T {
	i, found := slices.BinarySearch(s, v)
	if found {
		return s
	}
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removeSorted removes v from sorted s if present.
func removeSorted[T cmp.Ordered](s []T, v T) []T {
	if i, found := slices.BinarySearch(s, v); found {
		s = append(s[:i], s[i+1:]...)
	}
	return s
}

// markAppDirty queues app for recomputation on the next Propagate.
func (p *Platform) markAppDirty(app cluster.AppID) {
	p.dirtyApps.Set(int(app))
}

// markVIPDirty marks the application owning vip dirty, when known.
func (p *Platform) markVIPDirty(vip lbswitch.VIP) {
	vi, ok := p.vipIx.Lookup(vip)
	if !ok || int(vi) >= len(p.vipOwner) {
		return
	}
	if owner := p.vipOwner[vi]; owner >= 0 {
		p.markAppDirty(owner)
	}
}

// onSwitchReconfig is the lbswitch.Switch OnReconfig hook: any VIP/RIP
// membership or weight change re-routes that VIP's demand. It also
// maintains the VIP→owner index (AddVIP always precedes any route or
// session activity on a VIP, so the index is complete by construction).
func (p *Platform) onSwitchReconfig(vip lbswitch.VIP, app cluster.AppID) {
	vi := p.vipIndex(vip)
	p.vipOwner = growFill(p.vipOwner, int(vi)+1, cluster.AppID(-1))
	p.vipOwner[vi] = app
	p.markAppDirty(app)
}

// markVIPActive adds the VIP index to the active set.
func (p *Platform) markVIPActive(vi ids.Index) {
	p.activeVIPs.Set(int(vi))
}

// unmarkVIPActive removes the VIP index from the active set.
func (p *Platform) unmarkVIPActive(vi ids.Index) {
	p.activeVIPs.Clear(int(vi))
}

// refreshShares revalidates app's DNS share cache against the current
// record generation. Sequential phases only: it interns VIPs and grows
// the cache table, both unsafe under the concurrent compute phase.
func (p *Platform) refreshShares(app cluster.AppID) {
	gen := p.DNS.Gen(app)
	if gen == 0 {
		if int(app) < len(p.shareCache) {
			p.shareCache[app].gen = 0
		}
		return
	}
	p.shareCache = growSlice(p.shareCache, int(app)+1)
	c := &p.shareCache[app]
	if c.gen == gen {
		return
	}
	vips, shares, err := p.DNS.ExpectedShares(app)
	if err != nil {
		c.gen = 0
		return
	}
	c.gen = gen
	c.vips = c.vips[:0]
	for _, v := range vips {
		c.vips = append(c.vips, p.vipIndex(lbswitch.VIP(v)))
	}
	c.shares = append(c.shares[:0], shares...)
}

// sharesRO returns app's share cache if it is current, else nil (no DNS
// record, or not refreshed this pass). Read-only: safe from the
// concurrent compute phase, whose apps were all refreshed beforehand.
func (p *Platform) sharesRO(app cluster.AppID) *sharesCache {
	if int(app) >= len(p.shareCache) {
		return nil
	}
	c := &p.shareCache[app]
	if c.gen == 0 || c.gen != p.DNS.Gen(app) {
		return nil
	}
	return c
}

// workers returns the compute-phase fan-out width.
func (p *Platform) workers() int {
	if p.Cfg.PropagateWorkers > 0 {
		return p.Cfg.PropagateWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Propagate pushes application demand through the whole stack:
// DNS exposure weights split each app's demand over its VIPs; each VIP's
// bandwidth lands on its advertised access link and its home LB switch;
// each VIP's demand splits over its RIPs by LB weight; and each RIP's
// share becomes its VM's demand. Call after any change to demand,
// exposure, placement, or weights. Managers call it automatically after
// their actions.
//
// Only applications marked dirty since the last call are recomputed;
// everything that can shift demand marks the owner dirty (see the file
// comment), so callers need not know which path runs. A full recompute
// runs every Config.PropagateFullEvery calls, when more than half the
// demand-carrying apps are dirty, or on demand via PropagateFull; by
// construction both paths produce bit-identical state.
func (p *Platform) Propagate() {
	p.propagateTicks++
	fullEvery := p.Cfg.PropagateFullEvery
	if fullEvery == 0 {
		fullEvery = defaultFullEvery
	}
	full := (fullEvery > 0 && p.propagateTicks%int64(fullEvery) == 0) ||
		2*p.dirtyApps.Count() >= p.demandApps.Count()
	if full {
		p.propagateFull()
		p.dirtyApps.Reset()
	} else {
		p.propagateDirty() // clears consumed dirty bits itself
		if p.Cfg.PropagateDebugCheck {
			p.debugCheckAgainstFull()
		}
	}
	if p.Cfg.AuditOnChange || p.Cfg.AuditEvery > 0 {
		p.maybeAudit()
	}
}

// PropagateFull forces a full recompute of all demand state. Results
// are identical to Propagate; exported for benchmarks and debugging.
func (p *Platform) PropagateFull() {
	p.propagateFull()
	p.dirtyApps.Reset()
}

// appliedFor returns app's ledger, growing the table to cover it.
func (p *Platform) appliedFor(app cluster.AppID) *appApplied {
	p.applied = growSlice(p.applied, int(app)+1)
	return &p.applied[app]
}

// propagateDirty recomputes only the dirty applications: a sequential
// undo/refresh phase, a (possibly parallel) compute phase, and a
// sequential apply phase in ascending app order.
func (p *Platform) propagateDirty() {
	apps := p.dirtyApps.AppendMembers(p.dirtyScratch[:0])
	p.dirtyScratch = apps
	if len(apps) == 0 {
		return
	}
	comp := p.computeScratch[:0]
	for _, ai := range apps {
		p.dirtyApps.Clear(int(ai)) // O(dirty), not O(table)
		app := cluster.AppID(ai)
		rec := p.appliedFor(app) // grown here, before compute takes pointers
		p.undoApp(rec)
		rec.reset()
		if !p.demandApps.Get(int(ai)) {
			continue
		}
		p.refreshShares(app)
		comp = append(comp, ai)
	}
	p.computeScratch = comp
	p.computeApps(comp)
	for _, ai := range comp {
		p.applyRec(&p.applied[ai])
	}
}

// propagateFull recomputes every application from scratch: clear all
// fluid state (O(1) epoch bumps for the big tables), refresh every
// demand-carrying app's shares, then the same compute/apply phases as
// the dirty path over the full app set.
func (p *Platform) propagateFull() {
	// Reset every VM carrying a RIP to its session-overlay base.
	for vm, ri := range p.vmRIP {
		if ri == ids.None {
			continue
		}
		if v := p.Cluster.VM(cluster.VMID(vm)); v != nil {
			v.Demand = p.sessVM.get(ids.Index(vm))
		}
	}
	p.fluidVM.clearAll()
	// Clear previously active VIPs down to their session-only load; the
	// apply phase re-marks the ones still carrying demand.
	act := p.activeVIPs.AppendMembers(p.activeScratch[:0])
	p.activeScratch = act
	for _, a := range act {
		vi := ids.Index(a)
		vip := p.vipIx.Key(vi)
		sess := p.sessVIP.get(vi)
		p.Net.SetVIPTraffic(string(vip), sess)
		if home, ok := p.Fabric.HomeOf(vip); ok {
			p.Fabric.Switch(home).SetVIPLoad(vip, sess)
		}
		if sess == 0 {
			p.activeVIPs.Clear(int(vi))
		}
	}
	p.fluidTraffic.clearAll()
	p.fluidSwLoad.clearAll()
	for i := range p.applied {
		p.applied[i].reset()
	}
	apps := p.demandApps.AppendMembers(p.appScratch[:0])
	p.appScratch = apps
	if len(apps) == 0 {
		return
	}
	p.applied = growSlice(p.applied, int(apps[len(apps)-1])+1)
	for _, ai := range apps {
		p.refreshShares(cluster.AppID(ai))
	}
	p.computeApps(apps)
	for _, ai := range apps {
		p.applyRec(&p.applied[ai])
	}
}

// computeApps runs the compute phase over apps (ascending app indices),
// fanning out across the worker pool when the width and app count
// warrant it. Callers must have grown p.applied past the last app and
// refreshed every app's share cache.
func (p *Platform) computeApps(apps []int32) {
	if nw := p.workers(); nw > 1 && len(apps) >= parallelThreshold {
		p.computeAppsParallel(apps, nw)
		return
	}
	for _, ai := range apps {
		p.computeApp(cluster.AppID(ai), p.appDemand[ai], &p.applied[ai], &p.scratch)
	}
}

// ensurePool grows the persistent worker pool to nw workers. Workers
// park on their start channel between passes; each owns its scratch.
func (p *Platform) ensurePool(nw int) {
	for len(p.pool.start) < nw {
		ch := make(chan struct{}, 1)
		p.pool.start = append(p.pool.start, ch)
		go func() {
			sc := &propScratch{}
			for range ch {
				for {
					i := p.pool.cursor.Add(1) - 1
					if i >= int64(len(p.pool.apps)) {
						break
					}
					ai := p.pool.apps[i]
					p.computeApp(cluster.AppID(ai), p.appDemand[ai], &p.applied[ai], sc)
				}
				p.pool.wg.Done()
			}
		}()
	}
}

// computeAppsParallel fills each app's ledger concurrently on the
// persistent pool. The compute phase only reads platform state (share
// caches were refreshed by the caller) and writes disjoint ledgers, so
// any scheduling order yields the same ledgers; determinism comes from
// the sequential sorted apply. The channel send publishes the pass
// state to each worker; wg.Wait orders their writes before return.
func (p *Platform) computeAppsParallel(apps []int32, nw int) {
	if nw > len(apps) {
		nw = len(apps)
	}
	p.ensurePool(nw)
	p.pool.apps = apps
	p.pool.cursor.Store(0)
	p.pool.wg.Add(nw)
	for w := 0; w < nw; w++ {
		p.pool.start[w] <- struct{}{}
	}
	p.pool.wg.Wait()
	p.pool.apps = nil
}

// computeApp fills rec with app's fluid contributions under the current
// DNS shares, VIP homes, reachability, and RIP weights. It reads
// platform state but writes only rec and scratch, so it is safe to run
// concurrently for distinct apps.
func (p *Platform) computeApp(app cluster.AppID, demand Demand, rec *appApplied, scratch *propScratch) {
	sc := p.sharesRO(app)
	if sc == nil {
		return // app has no DNS record: demand is unroutable
	}
	for i, vi := range sc.vips {
		share := sc.shares[i]
		vip := p.vipIx.Key(vi)
		vipMbps := demand.Mbps * share
		vipCPU := demand.CPU * share
		av := appliedVIP{vip: vi, traffic: vipMbps, act: vipMbps > 0 || vipCPU > 0}
		home, ok := p.Fabric.HomeOf(vip)
		if !ok {
			rec.vips = append(rec.vips, av)
			continue
		}
		sw := p.Fabric.Switch(home)
		// Black-holing: an undetected link failure drops the share of
		// the VIP's traffic routed over the dead link, and an undetected
		// switch failure drops the whole VIP. The clients still send the
		// demand (av.traffic keeps the full value — the packets do cross
		// the access links), it just never reaches a VM, which is
		// exactly the gap the availability accounting measures.
		reach := p.vipReachability(string(vip))
		if !sw.Serving() {
			reach = 0
		}
		vipMbps *= reach
		vipCPU *= reach
		av.hasHome = true
		av.swLoad = vipMbps
		rec.vips = append(rec.vips, av)
		if reach == 0 {
			continue
		}
		rips, tags, mbpsShares, err := sw.AppendVIPLoadShareTagged(vip, vipMbps,
			scratch.rips[:0], scratch.tags[:0], scratch.mbps[:0])
		scratch.rips, scratch.tags, scratch.mbps = rips, tags, mbpsShares
		if err != nil {
			continue
		}
		// The load split distributes the fluid Mbps; CPU follows the
		// same weight proportions.
		var totalMbps float64
		for _, m := range mbpsShares {
			totalMbps += m
		}
		for j := range rips {
			frac := 0.0
			if totalMbps > 0 {
				frac = mbpsShares[j] / totalMbps
			} else if len(rips) > 0 {
				frac = 1 / float64(len(rips))
			}
			// RIP → VM: the switch entry's tag carries the VM index for
			// RIPs deployed through the platform; untagged entries (direct
			// fabric configuration) fall back to the interner.
			vmID := cluster.VMID(-1)
			if t := tags[j]; t >= 0 {
				vmID = cluster.VMID(t)
			} else if ri, ok := p.ripIx.Lookup(rips[j]); ok && int(ri) < len(p.ripVM) {
				vmID = p.ripVM[ri]
			}
			if vmID < 0 || p.Cluster.VM(vmID) == nil {
				continue
			}
			rec.vms = append(rec.vms, appliedVM{vm: vmID, res: cluster.Resources{
				CPU:     vipCPU * frac,
				NetMbps: mbpsShares[j],
			}})
		}
	}
}

// undoApp removes an app's previously applied contributions, leaving
// each touched VIP and VM at its session-overlay base.
func (p *Platform) undoApp(rec *appApplied) {
	for i := range rec.vips {
		av := &rec.vips[i]
		vip := p.vipIx.Key(av.vip)
		sess := p.sessVIP.get(av.vip)
		p.Net.SetVIPTraffic(string(vip), sess)
		p.fluidTraffic.del(av.vip)
		// The VIP may have moved switches (or lost its home) since the
		// ledger was written, so resolve the current home.
		if home, ok := p.Fabric.HomeOf(vip); ok {
			p.Fabric.Switch(home).SetVIPLoad(vip, sess)
		}
		p.fluidSwLoad.del(av.vip)
		if sess == 0 {
			p.unmarkVIPActive(av.vip)
		}
	}
	for i := range rec.vms {
		avm := &rec.vms[i]
		vmi := ids.Index(avm.vm)
		if vm := p.Cluster.VM(avm.vm); vm != nil {
			vm.Demand = p.sessVM.get(vmi)
		}
		p.fluidVM.del(vmi)
	}
}

// applyRec writes an app's freshly computed contributions. Every write
// is canonical — base plus fluid in one expression — so applying after
// undoApp reproduces exactly the state a full recompute would build.
func (p *Platform) applyRec(rec *appApplied) {
	for i := range rec.vips {
		av := &rec.vips[i]
		vip := p.vipIx.Key(av.vip)
		sess := p.sessVIP.get(av.vip)
		p.Net.SetVIPTraffic(string(vip), av.traffic+sess)
		p.fluidTraffic.set(av.vip, av.traffic)
		if av.hasHome {
			if home, ok := p.Fabric.HomeOf(vip); ok {
				p.Fabric.Switch(home).SetVIPLoad(vip, av.swLoad+sess)
			}
			p.fluidSwLoad.set(av.vip, av.swLoad)
		}
		if av.act || sess > 0 {
			p.markVIPActive(av.vip)
		}
	}
	for i := range rec.vms {
		avm := &rec.vms[i]
		vmi := ids.Index(avm.vm)
		if vm := p.Cluster.VM(avm.vm); vm != nil {
			vm.Demand = vm.Demand.Add(avm.res)
		}
		p.fluidVM.add(vmi, avm.res)
	}
}

// propState is a bitwise snapshot of everything Propagate writes, used
// by the debug cross-check.
type propState struct {
	vmDemand   map[cluster.VMID]cluster.Resources
	vipTraffic map[lbswitch.VIP]uint64
	swVIPLoad  map[lbswitch.VIP]uint64
	swLoads    []uint64
	linkLoads  []uint64
}

func (p *Platform) captureState() *propState {
	s := &propState{
		vmDemand:   make(map[cluster.VMID]cluster.Resources),
		vipTraffic: make(map[lbswitch.VIP]uint64),
		swVIPLoad:  make(map[lbswitch.VIP]uint64),
	}
	for vm, ri := range p.vmRIP {
		if ri == ids.None {
			continue
		}
		if v := p.Cluster.VM(cluster.VMID(vm)); v != nil {
			s.vmDemand[cluster.VMID(vm)] = v.Demand
		}
	}
	for vi, owner := range p.vipOwner {
		if owner < 0 {
			continue
		}
		vip := p.vipIx.Key(ids.Index(vi))
		s.vipTraffic[vip] = math.Float64bits(p.Net.VIPTraffic(string(vip)))
		if home, ok := p.Fabric.HomeOf(vip); ok {
			s.swVIPLoad[vip] = math.Float64bits(p.Fabric.Switch(home).VIPLoad(vip))
		}
	}
	for i := 0; i < p.Fabric.NumSwitches(); i++ {
		s.swLoads = append(s.swLoads, math.Float64bits(p.Fabric.Switch(lbswitch.SwitchID(i)).ThroughputMbps()))
	}
	for _, l := range p.Net.Links() {
		s.linkLoads = append(s.linkLoads, math.Float64bits(l.LoadMbps()))
	}
	return s
}

func (a *propState) diff(b *propState) string {
	for vm, da := range a.vmDemand {
		if db := b.vmDemand[vm]; da != db {
			return fmt.Sprintf("vm %d demand %+v != %+v", vm, da, db)
		}
	}
	if len(a.vmDemand) != len(b.vmDemand) {
		return fmt.Sprintf("vm count %d != %d", len(a.vmDemand), len(b.vmDemand))
	}
	for vip, ta := range a.vipTraffic {
		if tb := b.vipTraffic[vip]; ta != tb {
			return fmt.Sprintf("vip %s traffic %v != %v", vip, math.Float64frombits(ta), math.Float64frombits(tb))
		}
	}
	for vip, la := range a.swVIPLoad {
		if lb := b.swVIPLoad[vip]; la != lb {
			return fmt.Sprintf("vip %s switch load %v != %v", vip, math.Float64frombits(la), math.Float64frombits(lb))
		}
	}
	for i := range a.swLoads {
		if a.swLoads[i] != b.swLoads[i] {
			return fmt.Sprintf("switch %d throughput %v != %v", i, math.Float64frombits(a.swLoads[i]), math.Float64frombits(b.swLoads[i]))
		}
	}
	for i := range a.linkLoads {
		if a.linkLoads[i] != b.linkLoads[i] {
			return fmt.Sprintf("link %d load %v != %v", i, math.Float64frombits(a.linkLoads[i]), math.Float64frombits(b.linkLoads[i]))
		}
	}
	return ""
}

// debugCheckAgainstFull verifies that the incremental pass left exactly
// the state a full recompute builds, and panics on any bit difference.
func (p *Platform) debugCheckAgainstFull() {
	before := p.captureState()
	p.propagateFull()
	after := p.captureState()
	if d := before.diff(after); d != "" {
		panic("core: incremental propagation diverged from full recompute: " + d)
	}
}
