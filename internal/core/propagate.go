package core

import (
	"cmp"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"megadc/internal/cluster"
	"megadc/internal/lbswitch"
)

// Incremental demand propagation.
//
// Propagate used to be a full-stack recompute — every VM zeroed, every
// keyed slice rebuilt and sorted, every app's DNS shares re-queried, and
// every VIP's RIP fan-out re-walked — on every manager action and demand
// tick, making a run O(events × VIPs × RIPs). This file makes the
// steady-state cost proportional to what changed instead:
//
//   - Every mutation that can shift where demand lands marks the owning
//     application dirty: SetAppDemand directly; DNS exposure changes via
//     dnsctl's OnChange hook; switch VIP/RIP/weight reconfigurations via
//     lbswitch's OnReconfig hook; route advertisements via netmodel's
//     OnRouteChange hook (resolved to an owner through vipOwner); and
//     switch/link fault-repair transitions explicitly (failures.go).
//   - Propagate recomputes only the dirty applications. For each one it
//     first undoes the app's previously applied contributions (recorded
//     in an appApplied ledger) and then applies freshly computed ones.
//   - Every value is written canonically — assigned from inputs, never
//     accumulated across Propagate calls — so the state after an
//     incremental pass is bit-for-bit identical to the state after a
//     full recompute. Link loads and switch throughput are likewise
//     canonical sums in fixed order (see netmodel.Link.LoadMbps and
//     lbswitch.Switch.ThroughputMbps). This equivalence is what lets a
//     periodic full-recompute fallback and a parallel full path coexist
//     with the incremental path without changing any result, and it is
//     checked exactly by Config.PropagateDebugCheck.
//
// The invariant between Propagate calls: for every VIP,
// net traffic = fluidTraffic[vip] + sessVIP[vip] and
// switch load  = fluidSwLoad[vip] + sessVIP[vip]; for every VM,
// demand = fluidVM[vm] + sessVM[vm]. SessionOpened/SessionClosed keep
// the invariant by rewriting these same expressions, so discrete
// session churn needs no dirty marking at all.

// defaultFullEvery is the period of the full-recompute safety net when
// Config.PropagateFullEvery is 0.
const defaultFullEvery = 256

// parallelThreshold is the minimum number of demand-carrying apps
// before the full path fans out across workers; below it the
// goroutine overhead outweighs the compute.
const parallelThreshold = 64

// appliedVIP records what one Propagate wrote for one VIP of an app.
type appliedVIP struct {
	vip     lbswitch.VIP
	traffic float64 // fluid Mbps set on the access network (pre-reachability)
	swLoad  float64 // fluid Mbps set on the home switch (post-reachability)
	hasHome bool
	act     bool // carried demand: counts toward the active-VIP set
}

// appliedVM records the fluid demand one Propagate added to one VM.
type appliedVM struct {
	vm  cluster.VMID
	res cluster.Resources
}

// appApplied is the per-application ledger of applied contributions;
// its slices are truncated and reused so steady-state recomputes do
// not allocate.
type appApplied struct {
	vips []appliedVIP
	vms  []appliedVM
}

func (r *appApplied) reset() {
	r.vips = r.vips[:0]
	r.vms = r.vms[:0]
}

// sharesCache holds an app's DNS expected shares with typed VIPs,
// invalidated by the DNS record generation.
type sharesCache struct {
	gen    int64
	vips   []lbswitch.VIP
	shares []float64
}

// propScratch is reusable buffer space for the RIP fan-out; the
// parallel full path gives each worker its own.
type propScratch struct {
	rips []lbswitch.RIP
	mbps []float64
}

// insertSorted inserts v into sorted s if absent, keeping s sorted.
func insertSorted[T cmp.Ordered](s []T, v T) []T {
	i, found := slices.BinarySearch(s, v)
	if found {
		return s
	}
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removeSorted removes v from sorted s if present.
func removeSorted[T cmp.Ordered](s []T, v T) []T {
	if i, found := slices.BinarySearch(s, v); found {
		s = append(s[:i], s[i+1:]...)
	}
	return s
}

// markAppDirty queues app for recomputation on the next Propagate.
func (p *Platform) markAppDirty(app cluster.AppID) {
	p.dirtyApps[app] = struct{}{}
}

// markVIPDirty marks the application owning vip dirty, when known.
func (p *Platform) markVIPDirty(vip lbswitch.VIP) {
	if app, ok := p.vipOwner[vip]; ok {
		p.markAppDirty(app)
	}
}

// onSwitchReconfig is the lbswitch.Switch OnReconfig hook: any VIP/RIP
// membership or weight change re-routes that VIP's demand. It also
// maintains the VIP→owner index (AddVIP always precedes any route or
// session activity on a VIP, so the index is complete by construction).
func (p *Platform) onSwitchReconfig(vip lbswitch.VIP, app cluster.AppID) {
	p.vipOwner[vip] = app
	p.markAppDirty(app)
}

// markVIPActive adds vip to the active set and its sorted index.
func (p *Platform) markVIPActive(vip lbswitch.VIP) {
	if !p.activeVIPs[vip] {
		p.activeVIPs[vip] = true
		p.activeSorted = insertSorted(p.activeSorted, vip)
	}
}

// unmarkVIPActive removes vip from the active set and its sorted index.
func (p *Platform) unmarkVIPActive(vip lbswitch.VIP) {
	if p.activeVIPs[vip] {
		delete(p.activeVIPs, vip)
		p.activeSorted = removeSorted(p.activeSorted, vip)
	}
}

// sharesFor returns app's cached DNS expected shares, refreshing when
// the DNS record generation moved. Returns nil when app has no record.
func (p *Platform) sharesFor(app cluster.AppID) *sharesCache {
	gen := p.DNS.Gen(app)
	if gen == 0 {
		return nil
	}
	c := p.shareCache[app]
	if c != nil && c.gen == gen {
		return c
	}
	vips, shares, err := p.DNS.ExpectedShares(app)
	if err != nil {
		return nil
	}
	if c == nil {
		c = &sharesCache{}
		p.shareCache[app] = c
	}
	c.gen = gen
	c.vips = c.vips[:0]
	for _, v := range vips {
		c.vips = append(c.vips, lbswitch.VIP(v))
	}
	c.shares = shares
	return c
}

// workers returns the full-path fan-out width.
func (p *Platform) workers() int {
	if p.Cfg.PropagateWorkers > 0 {
		return p.Cfg.PropagateWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Propagate pushes application demand through the whole stack:
// DNS exposure weights split each app's demand over its VIPs; each VIP's
// bandwidth lands on its advertised access link and its home LB switch;
// each VIP's demand splits over its RIPs by LB weight; and each RIP's
// share becomes its VM's demand. Call after any change to demand,
// exposure, placement, or weights. Managers call it automatically after
// their actions.
//
// Only applications marked dirty since the last call are recomputed;
// everything that can shift demand marks the owner dirty (see the file
// comment), so callers need not know which path runs. A full recompute
// runs every Config.PropagateFullEvery calls, when more than half the
// demand-carrying apps are dirty, or on demand via PropagateFull; by
// construction both paths produce bit-identical state.
func (p *Platform) Propagate() {
	p.propagateTicks++
	fullEvery := p.Cfg.PropagateFullEvery
	if fullEvery == 0 {
		fullEvery = defaultFullEvery
	}
	full := (fullEvery > 0 && p.propagateTicks%int64(fullEvery) == 0) ||
		2*len(p.dirtyApps) >= len(p.demandAppsSorted)
	if full {
		p.propagateFull()
	} else {
		p.propagateDirty()
		if p.Cfg.PropagateDebugCheck {
			p.debugCheckAgainstFull()
		}
	}
	clear(p.dirtyApps)
	if p.Cfg.AuditOnChange || p.Cfg.AuditEvery > 0 {
		p.maybeAudit()
	}
}

// PropagateFull forces a full recompute of all demand state. Results
// are identical to Propagate; exported for benchmarks and debugging.
func (p *Platform) PropagateFull() {
	p.propagateFull()
	clear(p.dirtyApps)
}

// propagateDirty recomputes only the dirty applications, in sorted
// order: undo the app's previous contributions, then recompute and
// apply against the current DNS shares, placements, and health state.
func (p *Platform) propagateDirty() {
	if len(p.dirtyApps) == 0 {
		return
	}
	apps := p.dirtyScratch[:0]
	for app := range p.dirtyApps {
		apps = append(apps, app)
	}
	slices.Sort(apps)
	p.dirtyScratch = apps
	for _, app := range apps {
		rec := p.applied[app]
		if rec != nil {
			p.undoApp(rec)
		}
		demand, ok := p.appDemand[app]
		if !ok {
			if rec != nil {
				rec.reset()
			}
			continue
		}
		if rec == nil {
			rec = &appApplied{}
			p.applied[app] = rec
		}
		rec.reset()
		p.computeApp(app, demand, rec, &p.scratch)
		p.applyRec(rec)
	}
}

// propagateFull recomputes every application from scratch. The compute
// phase fans out across a worker pool when the app count warrants it;
// workers only fill disjoint per-app ledgers, and the apply phase runs
// sequentially in sorted app order, so the result is bit-for-bit
// identical for any worker count (the same contract placement.
// ParallelPlace meets).
func (p *Platform) propagateFull() {
	// Reset every VM carrying a RIP to its session-overlay base.
	for vmID := range p.vmToRIP {
		if vm := p.Cluster.VM(vmID); vm != nil {
			vm.Demand = p.sessVM[vmID]
		}
	}
	clear(p.fluidVM)
	// Clear previously active VIPs down to their session-only load; the
	// apply phase re-marks the ones still carrying demand.
	act := append(p.activeScratch[:0], p.activeSorted...)
	p.activeScratch = act
	for _, vip := range act {
		sess := p.sessVIP[vip]
		p.Net.SetVIPTraffic(string(vip), sess)
		if home, ok := p.Fabric.HomeOf(vip); ok {
			p.Fabric.Switch(home).SetVIPLoad(vip, sess)
		}
		if sess == 0 {
			p.unmarkVIPActive(vip)
		}
	}
	clear(p.fluidTraffic)
	clear(p.fluidSwLoad)
	for app, rec := range p.applied {
		if _, ok := p.appDemand[app]; !ok {
			delete(p.applied, app)
		} else {
			rec.reset()
		}
	}
	apps := p.demandAppsSorted
	for _, app := range apps {
		if p.applied[app] == nil {
			p.applied[app] = &appApplied{}
		}
		p.sharesFor(app) // refresh caches before the read-only fan-out
	}
	if nw := p.workers(); nw > 1 && len(apps) >= parallelThreshold {
		p.computeAppsParallel(apps, nw)
	} else {
		for _, app := range apps {
			p.computeApp(app, p.appDemand[app], p.applied[app], &p.scratch)
		}
	}
	for _, app := range apps {
		p.applyRec(p.applied[app])
	}
}

// computeAppsParallel fills each app's ledger concurrently. The compute
// phase only reads platform state (share caches were refreshed by the
// caller) and writes disjoint ledgers, so any scheduling order yields
// the same ledgers; determinism comes from the sequential sorted apply.
func (p *Platform) computeAppsParallel(apps []cluster.AppID, nw int) {
	if nw > len(apps) {
		nw = len(apps)
	}
	if cap(p.workerScratch) < nw {
		p.workerScratch = make([]propScratch, nw)
	}
	ws := p.workerScratch[:nw]
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(sc *propScratch) {
			defer wg.Done()
			for {
				i := cursor.Add(1) - 1
				if i >= int64(len(apps)) {
					return
				}
				app := apps[i]
				p.computeApp(app, p.appDemand[app], p.applied[app], sc)
			}
		}(&ws[w])
	}
	wg.Wait()
}

// computeApp fills rec with app's fluid contributions under the current
// DNS shares, VIP homes, reachability, and RIP weights. It reads
// platform state but writes only rec and scratch, so it is safe to run
// concurrently for distinct apps.
func (p *Platform) computeApp(app cluster.AppID, demand Demand, rec *appApplied, scratch *propScratch) {
	sc := p.sharesFor(app)
	if sc == nil {
		return // app has no DNS record: demand is unroutable
	}
	for i, vip := range sc.vips {
		share := sc.shares[i]
		vipMbps := demand.Mbps * share
		vipCPU := demand.CPU * share
		av := appliedVIP{vip: vip, traffic: vipMbps, act: vipMbps > 0 || vipCPU > 0}
		home, ok := p.Fabric.HomeOf(vip)
		if !ok {
			rec.vips = append(rec.vips, av)
			continue
		}
		sw := p.Fabric.Switch(home)
		// Black-holing: an undetected link failure drops the share of
		// the VIP's traffic routed over the dead link, and an undetected
		// switch failure drops the whole VIP. The clients still send the
		// demand (av.traffic keeps the full value — the packets do cross
		// the access links), it just never reaches a VM, which is
		// exactly the gap the availability accounting measures.
		reach := p.vipReachability(string(vip))
		if !sw.Serving() {
			reach = 0
		}
		vipMbps *= reach
		vipCPU *= reach
		av.hasHome = true
		av.swLoad = vipMbps
		rec.vips = append(rec.vips, av)
		if reach == 0 {
			continue
		}
		rips, mbpsShares, err := sw.AppendVIPLoadShare(vip, vipMbps, scratch.rips[:0], scratch.mbps[:0])
		scratch.rips, scratch.mbps = rips, mbpsShares
		if err != nil {
			continue
		}
		// The load split distributes the fluid Mbps; CPU follows the
		// same weight proportions.
		var totalMbps float64
		for _, m := range mbpsShares {
			totalMbps += m
		}
		for j, rip := range rips {
			frac := 0.0
			if totalMbps > 0 {
				frac = mbpsShares[j] / totalMbps
			} else if len(rips) > 0 {
				frac = 1 / float64(len(rips))
			}
			vmID, ok := p.ripToVM[rip]
			if !ok {
				continue
			}
			if p.Cluster.VM(vmID) == nil {
				continue
			}
			rec.vms = append(rec.vms, appliedVM{vm: vmID, res: cluster.Resources{
				CPU:     vipCPU * frac,
				NetMbps: mbpsShares[j],
			}})
		}
	}
}

// undoApp removes an app's previously applied contributions, leaving
// each touched VIP and VM at its session-overlay base.
func (p *Platform) undoApp(rec *appApplied) {
	for i := range rec.vips {
		av := &rec.vips[i]
		sess := p.sessVIP[av.vip]
		p.Net.SetVIPTraffic(string(av.vip), sess)
		delete(p.fluidTraffic, av.vip)
		// The VIP may have moved switches (or lost its home) since the
		// ledger was written, so resolve the current home.
		if home, ok := p.Fabric.HomeOf(av.vip); ok {
			p.Fabric.Switch(home).SetVIPLoad(av.vip, sess)
		}
		delete(p.fluidSwLoad, av.vip)
		if sess == 0 {
			p.unmarkVIPActive(av.vip)
		}
	}
	for i := range rec.vms {
		avm := &rec.vms[i]
		if vm := p.Cluster.VM(avm.vm); vm != nil {
			vm.Demand = p.sessVM[avm.vm]
		}
		delete(p.fluidVM, avm.vm)
	}
}

// applyRec writes an app's freshly computed contributions. Every write
// is canonical — base plus fluid in one expression — so applying after
// undoApp reproduces exactly the state a full recompute would build.
func (p *Platform) applyRec(rec *appApplied) {
	for i := range rec.vips {
		av := &rec.vips[i]
		sess := p.sessVIP[av.vip]
		p.Net.SetVIPTraffic(string(av.vip), av.traffic+sess)
		p.fluidTraffic[av.vip] = av.traffic
		if av.hasHome {
			if home, ok := p.Fabric.HomeOf(av.vip); ok {
				p.Fabric.Switch(home).SetVIPLoad(av.vip, av.swLoad+sess)
			}
			p.fluidSwLoad[av.vip] = av.swLoad
		}
		if av.act || sess > 0 {
			p.markVIPActive(av.vip)
		}
	}
	for i := range rec.vms {
		avm := &rec.vms[i]
		if vm := p.Cluster.VM(avm.vm); vm != nil {
			vm.Demand = vm.Demand.Add(avm.res)
		}
		p.fluidVM[avm.vm] = p.fluidVM[avm.vm].Add(avm.res)
	}
}

// propState is a bitwise snapshot of everything Propagate writes, used
// by the debug cross-check.
type propState struct {
	vmDemand   map[cluster.VMID]cluster.Resources
	vipTraffic map[lbswitch.VIP]uint64
	swVIPLoad  map[lbswitch.VIP]uint64
	swLoads    []uint64
	linkLoads  []uint64
}

func (p *Platform) captureState() *propState {
	s := &propState{
		vmDemand:   make(map[cluster.VMID]cluster.Resources),
		vipTraffic: make(map[lbswitch.VIP]uint64),
		swVIPLoad:  make(map[lbswitch.VIP]uint64),
	}
	for vmID := range p.vmToRIP {
		if vm := p.Cluster.VM(vmID); vm != nil {
			s.vmDemand[vmID] = vm.Demand
		}
	}
	for vip := range p.vipOwner {
		s.vipTraffic[vip] = math.Float64bits(p.Net.VIPTraffic(string(vip)))
		if home, ok := p.Fabric.HomeOf(vip); ok {
			s.swVIPLoad[vip] = math.Float64bits(p.Fabric.Switch(home).VIPLoad(vip))
		}
	}
	for _, sw := range p.Fabric.Switches() {
		s.swLoads = append(s.swLoads, math.Float64bits(sw.ThroughputMbps()))
	}
	for _, l := range p.Net.Links() {
		s.linkLoads = append(s.linkLoads, math.Float64bits(l.LoadMbps()))
	}
	return s
}

func (a *propState) diff(b *propState) string {
	for vm, da := range a.vmDemand {
		if db := b.vmDemand[vm]; da != db {
			return fmt.Sprintf("vm %d demand %+v != %+v", vm, da, db)
		}
	}
	if len(a.vmDemand) != len(b.vmDemand) {
		return fmt.Sprintf("vm count %d != %d", len(a.vmDemand), len(b.vmDemand))
	}
	for vip, ta := range a.vipTraffic {
		if tb := b.vipTraffic[vip]; ta != tb {
			return fmt.Sprintf("vip %s traffic %v != %v", vip, math.Float64frombits(ta), math.Float64frombits(tb))
		}
	}
	for vip, la := range a.swVIPLoad {
		if lb := b.swVIPLoad[vip]; la != lb {
			return fmt.Sprintf("vip %s switch load %v != %v", vip, math.Float64frombits(la), math.Float64frombits(lb))
		}
	}
	for i := range a.swLoads {
		if a.swLoads[i] != b.swLoads[i] {
			return fmt.Sprintf("switch %d throughput %v != %v", i, math.Float64frombits(a.swLoads[i]), math.Float64frombits(b.swLoads[i]))
		}
	}
	for i := range a.linkLoads {
		if a.linkLoads[i] != b.linkLoads[i] {
			return fmt.Sprintf("link %d load %v != %v", i, math.Float64frombits(a.linkLoads[i]), math.Float64frombits(b.linkLoads[i]))
		}
	}
	return ""
}

// debugCheckAgainstFull verifies that the incremental pass left exactly
// the state a full recompute builds, and panics on any bit difference.
func (p *Platform) debugCheckAgainstFull() {
	before := p.captureState()
	p.propagateFull()
	after := p.captureState()
	if d := before.diff(after); d != "" {
		panic("core: incremental propagation diverged from full recompute: " + d)
	}
}
