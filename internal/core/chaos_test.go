package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"megadc/internal/cluster"
	"megadc/internal/ctrlplane"
	"megadc/internal/lbswitch"
	"megadc/internal/netmodel"
)

// TestPropertyChaos runs random event sequences — demand changes,
// deploys, removals, exposure flips, VIP transfers, component
// failures, repairs, delayed detections, link flaps, and control-plane
// message faults (dropped, duplicated, and delayed control messages,
// pod partitions and heals) — against a platform with all control
// loops running over a fallible message bus, and checks that every
// invariant holds after every event, that the platform never panics,
// and that the invariants still hold after everything is repaired.
// This is the repository's failure-injection umbrella test.
func TestPropertyChaos(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		topo := SmallTopology()
		topo.Seed = seed
		cfg := DefaultConfig()
		cfg.VIPsPerApp = 2
		// Cross-check every incremental Propagate against a full
		// recompute: any bitwise divergence panics the run.
		cfg.PropagateDebugCheck = true
		// Run the conservation-law auditor on every Propagate; any
		// accumulated violation fails the run below.
		cfg.AuditOnChange = true
		// Route control decisions over the fallible bus with a small
		// delivery delay, so message faults below have a window to hit.
		cfg.Ctrl.Enable = true
		cfg.Ctrl.Default = ctrlplane.LinkConfig{Delay: 0.5}
		p, err := NewPlatform(topo, cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var apps []cluster.AppID
		for i := 0; i < 4; i++ {
			a, err := p.OnboardApp("chaos", cluster.Resources{CPU: 1, MemMB: 1024, NetMbps: 100},
				3, Demand{CPU: 2, Mbps: 50})
			if err != nil {
				return false
			}
			apps = append(apps, a.ID)
		}
		p.Start()
		for _, op := range ops {
			p.Eng.RunFor(15)
			app := apps[rng.Intn(len(apps))]
			switch op % 16 {
			case 0: // demand spike
				p.SetAppDemand(app, Demand{CPU: rng.Float64() * 30, Mbps: rng.Float64() * 400})
			case 1: // demand drop
				p.SetAppDemand(app, Demand{CPU: rng.Float64(), Mbps: rng.Float64() * 10})
			case 2: // manual deploy
				pods := p.Cluster.PodIDs()
				p.DeployInstance(app, pods[rng.Intn(len(pods))])
			case 3: // manual removal (keep at least one instance)
				a := p.Cluster.App(app)
				if a != nil && a.NumInstances() > 1 {
					vms := a.VMIDs()
					p.RemoveInstance(vms[rng.Intn(len(vms))])
				}
			case 4: // exposure flip
				vips := p.DNS.VIPs(app)
				if len(vips) > 0 {
					p.DNS.SetWeight(app, vips[rng.Intn(len(vips))], rng.Float64()*2)
					p.Propagate()
				}
			case 5: // manual forced VIP transfer
				vips := p.Fabric.VIPsOfApp(app)
				if len(vips) > 0 {
					dst := lbswitch.SwitchID(rng.Intn(topo.Switches))
					p.Fabric.TransferVIP(vips[rng.Intn(len(vips))], dst, true)
					p.Propagate()
				}
			case 6: // server failure (spare the last serving server)
				ids := p.Cluster.ServerIDs()
				serving := 0
				for _, id := range ids {
					if p.Cluster.Server(id).Serving() {
						serving++
					}
				}
				victim := ids[rng.Intn(len(ids))]
				if srv := p.Cluster.Server(victim); srv != nil && srv.Serving() && serving > 2 {
					p.FailServer(victim)
				}
			case 7: // switch failure (keep at least two serving)
				alive := 0
				for _, sw := range p.Fabric.Switches() {
					if sw.Serving() {
						alive++
					}
				}
				if alive > 2 {
					id := lbswitch.SwitchID(rng.Intn(topo.Switches))
					if p.Fabric.Switch(id).Serving() {
						p.FailSwitch(id)
					}
				}
			case 8: // link failure (keep at least two serving)
				alive := 0
				for _, l := range p.Net.Links() {
					if l.Serving() {
						alive++
					}
				}
				if alive > 2 {
					id := netmodel.LinkID(rng.Intn(topo.ISPs * topo.LinksPerISP))
					if p.Net.Link(id).Serving() {
						p.FailLink(id)
					}
				}
			case 9: // repair everything that has failed
				for _, id := range p.Cluster.ServerIDs() {
					if !p.Cluster.Server(id).Serving() {
						p.RepairServer(id)
					}
				}
				for _, sw := range p.Fabric.Switches() {
					if !sw.Serving() {
						p.RepairSwitch(sw.ID)
					}
				}
				for _, l := range p.Net.Links() {
					if !l.Serving() {
						p.RepairLink(l.ID)
					}
				}
			case 10: // silent server fault with delayed detection
				ids := p.Cluster.ServerIDs()
				serving := 0
				for _, id := range ids {
					if p.Cluster.Server(id).Serving() {
						serving++
					}
				}
				victim := ids[rng.Intn(len(ids))]
				if srv := p.Cluster.Server(victim); srv != nil && srv.Serving() && serving > 2 {
					p.FaultServer(victim)
					p.Eng.After(10, func() { p.DetectServer(victim) })
				}
			case 11: // link flap: down then back up before detection
				alive := 0
				for _, l := range p.Net.Links() {
					if l.Serving() {
						alive++
					}
				}
				if alive > 2 {
					id := netmodel.LinkID(rng.Intn(topo.ISPs * topo.LinksPerISP))
					if p.Net.Link(id).Serving() {
						p.FaultLink(id)
						p.Eng.After(5, func() { p.RepairLink(id) })
					}
				}
			case 12: // drop the next control message (retries recover it)
				p.Ctrl().DropNext++
			case 13: // duplicate the next control message (dedup absorbs it)
				p.Ctrl().DupNext++
			case 14: // delay the next control message well past its timeout
				p.Ctrl().DelayNext = 30
			case 15: // toggle a control-plane partition on a random pod
				pod := ctrlplane.Pod(rng.Intn(topo.Pods))
				switch {
				case p.Ctrl().Partitioned(pod):
					p.Ctrl().Heal(pod)
				case p.Ctrl().ConnectedPods(topo.Pods) > 1:
					p.Ctrl().Partition(pod)
				}
			}
			if err := p.CheckInvariants(); err != nil {
				t.Logf("invariant after op %d: %v", op%16, err)
				return false
			}
			if rep := p.Audit(); !rep.OK() {
				t.Logf("audit after op %d: %v", op%16, rep.Err())
				return false
			}
		}
		// Heal every control-plane partition (triggering deferred-op
		// reconciliation), repair every outstanding failure, let the
		// loops settle, and check that the platform converges back to a
		// healthy state.
		for i := 0; i < topo.Pods; i++ {
			if p.Ctrl().Partitioned(ctrlplane.Pod(i)) {
				p.Ctrl().Heal(ctrlplane.Pod(i))
			}
		}
		for _, id := range p.Cluster.ServerIDs() {
			if !p.Cluster.Server(id).Serving() {
				p.RepairServer(id)
			}
		}
		for _, sw := range p.Fabric.Switches() {
			if !sw.Serving() {
				p.RepairSwitch(sw.ID)
			}
		}
		for _, l := range p.Net.Links() {
			if !l.Serving() {
				p.RepairLink(l.ID)
			}
		}
		p.Eng.RunFor(600)
		if err := p.CheckInvariants(); err != nil {
			t.Logf("invariant after settling: %v", err)
			return false
		}
		if err := p.AuditErr(); err != nil {
			t.Logf("audit after settling: %v", err)
			return false
		}
		for _, id := range p.Cluster.ServerIDs() {
			if !p.Cluster.Server(id).Serving() {
				t.Logf("server %d not serving after repair-all", id)
				return false
			}
		}
		return true
	}
	max := 25
	if testing.Short() {
		max = 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: max, Rand: rand.New(rand.NewSource(24))}); err != nil {
		t.Error(err)
	}
}
