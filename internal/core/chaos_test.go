package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"megadc/internal/cluster"
	"megadc/internal/lbswitch"
	"megadc/internal/netmodel"
)

// TestPropertyChaos runs random event sequences — demand changes,
// deploys, removals, exposure flips, VIP transfers, and component
// failures — against a platform with all control loops running, and
// checks that every invariant holds after every event and that the
// platform never panics. This is the repository's failure-injection
// umbrella test.
func TestPropertyChaos(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		topo := SmallTopology()
		topo.Seed = seed
		cfg := DefaultConfig()
		cfg.VIPsPerApp = 2
		p, err := NewPlatform(topo, cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var apps []cluster.AppID
		for i := 0; i < 4; i++ {
			a, err := p.OnboardApp("chaos", cluster.Resources{CPU: 1, MemMB: 1024, NetMbps: 100},
				3, Demand{CPU: 2, Mbps: 50})
			if err != nil {
				return false
			}
			apps = append(apps, a.ID)
		}
		p.Start()
		for _, op := range ops {
			p.Eng.RunFor(15)
			app := apps[rng.Intn(len(apps))]
			switch op % 9 {
			case 0: // demand spike
				p.SetAppDemand(app, Demand{CPU: rng.Float64() * 30, Mbps: rng.Float64() * 400})
			case 1: // demand drop
				p.SetAppDemand(app, Demand{CPU: rng.Float64(), Mbps: rng.Float64() * 10})
			case 2: // manual deploy
				pods := p.Cluster.PodIDs()
				p.DeployInstance(app, pods[rng.Intn(len(pods))])
			case 3: // manual removal (keep at least one instance)
				a := p.Cluster.App(app)
				if a != nil && a.NumInstances() > 1 {
					vms := a.VMIDs()
					p.RemoveInstance(vms[rng.Intn(len(vms))])
				}
			case 4: // exposure flip
				vips := p.DNS.VIPs(app)
				if len(vips) > 0 {
					p.DNS.SetWeight(app, vips[rng.Intn(len(vips))], rng.Float64()*2)
					p.Propagate()
				}
			case 5: // manual forced VIP transfer
				vips := p.Fabric.VIPsOfApp(app)
				if len(vips) > 0 {
					dst := lbswitch.SwitchID(rng.Intn(topo.Switches))
					p.Fabric.TransferVIP(vips[rng.Intn(len(vips))], dst, true)
					p.Propagate()
				}
			case 6: // server failure (spare the last server of a pod)
				ids := p.Cluster.ServerIDs()
				victim := ids[rng.Intn(len(ids))]
				srv := p.Cluster.Server(victim)
				if srv != nil && !srv.Capacity.IsZero() {
					p.FailServer(victim)
				}
			case 7: // switch failure (keep at least two alive)
				alive := 0
				for _, sw := range p.Fabric.Switches() {
					if sw.Limits.MaxVIPs > 0 {
						alive++
					}
				}
				if alive > 2 {
					id := lbswitch.SwitchID(rng.Intn(topo.Switches))
					if p.Fabric.Switch(id).Limits.MaxVIPs > 0 {
						p.FailSwitch(id)
					}
				}
			case 8: // link failure (keep at least two alive)
				alive := 0
				for _, l := range p.Net.Links() {
					if l.CapacityMbps > 1 {
						alive++
					}
				}
				if alive > 2 {
					id := netmodel.LinkID(rng.Intn(topo.ISPs * topo.LinksPerISP))
					if p.Net.Link(id).CapacityMbps > 1 {
						p.FailLink(id)
					}
				}
			}
			if err := p.CheckInvariants(); err != nil {
				t.Logf("invariant after op %d: %v", op%9, err)
				return false
			}
		}
		// Let the loops settle and re-check.
		p.Eng.RunFor(600)
		if err := p.CheckInvariants(); err != nil {
			t.Logf("invariant after settling: %v", err)
			return false
		}
		return true
	}
	max := 25
	if testing.Short() {
		max = 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: max, Rand: rand.New(rand.NewSource(24))}); err != nil {
		t.Error(err)
	}
}
