package core

// Paper-scale construction (DESIGN.md §13). The interactive onboarding
// path (OnboardApp) spends O(switches) picking a home for every VIP,
// O(pod servers) picking a server for every VM, and one Propagate per
// onboarded app — all fine for experiment-sized platforms, quadratic
// pain at the paper's 300K servers / 300K applications / 6M RIPs. The
// bulk loader here builds the same state with O(1) placement decisions:
// VIPs round-robin over switches (balanced by construction, via
// viprip.Manager.AddVIPOn), VMs round-robin over a flat server cursor,
// RIPs configured under an explicit preferred VIP (the O(1) AddRIP
// path), demand written straight into the dense tables, and exactly one
// full propagation at the end.

import (
	"fmt"
	"runtime"
	"sync"

	"megadc/internal/cluster"
	"megadc/internal/lbswitch"
)

// ScaleSpec sizes a synthetic platform for the scale harness. All
// counts are exact: Apps applications, each with VIPsPerApp VIPs and
// InstancesPerApp VM instances, over Servers servers.
type ScaleSpec struct {
	Servers         int
	Apps            int
	InstancesPerApp int
	VIPsPerApp      int
	Seed            int64

	// Workers sets the worker count for the sharded stages of the bulk
	// loader (0 = GOMAXPROCS). Construction is bit-identical for any
	// worker count: the plan stage fills disjoint per-app slots with
	// pure functions of the app index, and the fabric stage gives each
	// worker whole switches, whose state is disjoint by construction.
	Workers int

	// Demand is the per-app offered load installed by the bulk loader.
	Demand Demand
	// Slice is the per-instance resource slice.
	Slice cluster.Resources
}

// PaperScaleSpec is the paper's headline build-out: 300K servers, 300K
// elastic applications, 20 instances each — 6M VMs behind 6M RIPs.
func PaperScaleSpec() ScaleSpec { return ScaleSpecFor(300_000) }

// ScaleSpecFor derives a proportional tier of the paper-scale platform
// from its server count (the scale index of BENCH_scale.json): as many
// apps as servers, 20 instances per app, so every server carries ~20
// VMs at every tier.
func ScaleSpecFor(servers int) ScaleSpec {
	return ScaleSpec{
		Servers:         servers,
		Apps:            servers,
		InstancesPerApp: 20,
		VIPsPerApp:      1,
		Seed:            1,
		Demand:          Demand{CPU: 1, Mbps: 2},
		Slice:           cluster.Resources{CPU: 0.25, MemMB: 64, NetMbps: 5},
	}
}

// NumVMs returns the total VM (and RIP) count of the spec.
func (s ScaleSpec) NumVMs() int { return s.Apps * s.InstancesPerApp }

// Topology derives the physical build-out: pods of ≤1000 servers,
// unscaled Catalyst-CSM switches sized so the fleet holds the RIP count
// with ≥2× headroom, and an access network whose links stay far below
// saturation under the installed demand.
func (s ScaleSpec) Topology() Topology {
	pods := s.Servers / 1000
	if pods < 4 {
		pods = 4
	}
	limits := lbswitch.CatalystCSM()
	switches := 2 * s.NumVMs() / limits.MaxRIPs
	if min := 2 * s.Apps * s.VIPsPerApp / limits.MaxVIPs; min > switches {
		switches = min
	}
	if switches < 8 {
		switches = 8
	}
	perServer := float64(s.NumVMs()) / float64(s.Servers)
	capacity := cluster.Resources{
		CPU:     2 * perServer * s.Slice.CPU,
		MemMB:   2 * perServer * s.Slice.MemMB,
		NetMbps: 2 * perServer * s.Slice.NetMbps,
	}
	return Topology{
		ISPs:           8,
		LinksPerISP:    4,
		LinkMbps:       float64(s.Apps) * s.Demand.Mbps, // ≤ ~6% utilization per link
		BorderRouters:  8,
		Switches:       switches,
		SwitchLimits:   limits,
		Pods:           pods,
		ServersPerPod:  (s.Servers + pods - 1) / pods,
		ServerCapacity: capacity,
		DNSTTLSeconds:  60,
		VIPPoolBase:    "198.18.0.0",
		VIPPoolSize:    uint32(s.Apps*s.VIPsPerApp + 1024),
		RIPPoolBase:    "10.0.0.0",
		RIPPoolSize:    uint32(s.NumVMs() + 1024),
		Seed:           s.Seed,
		SwitchPods:     (switches + 31) / 32,
	}
}

// BuildScalePlatform constructs a platform at the spec's scale and bulk
// onboards every application. PropagateFullEvery is disabled so steady
// ticks stay incremental; benchmarks call PropagateFull explicitly.
func BuildScalePlatform(spec ScaleSpec) (*Platform, error) {
	cfg := DefaultConfig()
	cfg.VIPsPerApp = spec.VIPsPerApp
	cfg.PropagateFullEvery = -1
	p, err := NewPlatform(spec.Topology(), cfg)
	if err != nil {
		return nil, err
	}
	if err := p.OnboardAppsBulk(spec); err != nil {
		return nil, err
	}
	return p, nil
}

// OnboardAppsBulk registers spec.Apps applications with O(1) placement
// decisions per entity and a single final full propagation. The
// resulting state is structurally the same as spec.Apps OnboardApp
// calls — VIPs homed and exposed, RIPs tagged, demand installed — just
// placed by round-robin instead of pressure scans.
//
// The loader is sharded into three stages (spec.Workers wide,
// bit-identical for any worker count):
//
//  1. plan (parallel): app names and all RIP address strings are pure
//     functions of the app index, so workers format them into disjoint
//     slots — at paper scale that is 6M string allocations off the
//     sequential path.
//  2. apply (sequential): app/VIP/VM registration and the dense-table
//     bindings, all of which allocate shared contiguous IDs whose order
//     defines the state.
//  3. fabric (parallel): RIP configuration mutates only the home
//     switch, so workers take whole switches and apply each switch's
//     planned RIPs in order. The OnReconfig hook is parked during the
//     stage: stage 2's AddVIPOn already recorded every VIP owner and
//     dirtied every app, and the closing PropagateFull recomputes all
//     routing anyway. Per-RIP trace events are not emitted on this
//     path (the synthetic build-out is not control-plane activity).
func (p *Platform) OnboardAppsBulk(spec ScaleSpec) error {
	if spec.Apps <= 0 || spec.InstancesPerApp <= 0 || spec.VIPsPerApp <= 0 {
		return fmt.Errorf("core: scale spec needs apps, instances, and VIPs")
	}
	servers := p.Cluster.ServerIDs()
	if len(servers) == 0 {
		return fmt.Errorf("core: no servers to place on")
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Stage 1 — plan. Shard the pure-function work over contiguous app
	// ranges into disjoint slices.
	_, ripPool := p.VIPRIP.BulkPools()
	ripStart, ripAddr, err := ripPool.PlanSequential()
	if err != nil {
		return fmt.Errorf("core: bulk rip plan: %w", err)
	}
	names := make([]string, spec.Apps)
	rips := make([]lbswitch.RIP, spec.Apps*spec.InstancesPerApp)
	var wg sync.WaitGroup
	chunk := (spec.Apps + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, spec.Apps)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				names[i] = fmt.Sprintf("app-%d", i)
				for j := 0; j < spec.InstancesPerApp; j++ {
					k := i*spec.InstancesPerApp + j
					rips[k] = lbswitch.RIP(ripAddr(ripStart + uint32(k)))
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if err := ripPool.ClaimRange(ripStart, uint32(len(rips))); err != nil {
		return fmt.Errorf("core: bulk rip claim: %w", err)
	}

	// Stage 2 — apply, in app order. RIP→switch configuration is only
	// recorded into per-switch work lists here; stage 3 plays them out.
	type ripCfg struct {
		vip lbswitch.VIP
		rip lbswitch.RIP
		tag int64
	}
	nsw := p.Fabric.NumSwitches()
	perSwitch := make([][]ripCfg, nsw)
	for s := range perSwitch {
		perSwitch[s] = make([]ripCfg, 0, len(rips)/nsw+spec.InstancesPerApp)
	}
	vips := make([]lbswitch.VIP, 0, spec.VIPsPerApp)
	vipSw := make([]lbswitch.SwitchID, 0, spec.VIPsPerApp)
	srvCursor, vipCursor := 0, 0
	for i := 0; i < spec.Apps; i++ {
		app := p.Cluster.AddApp(names[i], spec.Slice)
		p.appSlice = growSlice(p.appSlice, int(app.ID)+1)
		p.appSlice[app.ID] = spec.Slice
		p.appSliceSet.Set(int(app.ID))
		vips, vipSw = vips[:0], vipSw[:0]
		for v := 0; v < spec.VIPsPerApp; v++ {
			sw := lbswitch.SwitchID(vipCursor % nsw)
			vipCursor++
			vip, err := p.VIPRIP.AddVIPOn(app.ID, sw)
			if err != nil {
				return fmt.Errorf("core: bulk app %d vip: %w", i, err)
			}
			if err := p.DNS.Register(app.ID, string(vip), 1); err != nil {
				return err
			}
			if err := p.Net.Advertise(string(vip), p.pickAdvertLink(), false); err != nil {
				return err
			}
			vips = append(vips, vip)
			vipSw = append(vipSw, sw)
		}
		for j := 0; j < spec.InstancesPerApp; j++ {
			srv := servers[srvCursor%len(servers)]
			srvCursor++
			vm, err := p.Cluster.PlaceVM(app.ID, srv, spec.Slice)
			if err != nil {
				return fmt.Errorf("core: bulk app %d instance %d: %w", i, j, err)
			}
			if err := p.Cluster.Start(vm.ID); err != nil {
				return err
			}
			rip := rips[i*spec.InstancesPerApp+j]
			vip := vips[j%len(vips)]
			home := vipSw[j%len(vips)]
			p.bindRIP(rip, vm.ID, vip)
			perSwitch[home] = append(perSwitch[home], ripCfg{vip: vip, rip: rip, tag: int64(vm.ID)})
		}
		p.appDemand = growSlice(p.appDemand, int(app.ID)+1)
		p.appDemand[app.ID] = spec.Demand
		p.demandApps.Set(int(app.ID))
		p.markAppDirty(app.ID)
	}

	// Stage 3 — fabric. Each worker owns whole switches; within one
	// switch the planned RIPs apply in stage-2 order, so the final
	// per-switch state is independent of how switches map to workers.
	hooks := make([]func(lbswitch.VIP, cluster.AppID), nsw)
	for s := 0; s < nsw; s++ {
		sw := p.Fabric.Switch(lbswitch.SwitchID(s))
		hooks[s], sw.OnReconfig = sw.OnReconfig, nil
	}
	errs := make([]error, nsw)
	next := make(chan int, nsw)
	for s := 0; s < nsw; s++ {
		next <- s
	}
	close(next)
	for w := 0; w < min(workers, nsw); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range next {
				sw := p.Fabric.Switch(lbswitch.SwitchID(s))
				for _, c := range perSwitch[s] {
					if err := sw.AddRIP(c.vip, c.rip, 1); err != nil {
						errs[s] = fmt.Errorf("core: bulk rip %s on switch %d: %w", c.rip, s, err)
						break
					}
					if err := sw.SetRIPTag(c.vip, c.rip, c.tag); err != nil {
						errs[s] = err
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	for s := 0; s < nsw; s++ {
		p.Fabric.Switch(lbswitch.SwitchID(s)).OnReconfig = hooks[s]
		if errs[s] != nil {
			return errs[s]
		}
	}
	p.PropagateFull()
	return nil
}

// SteadyTick is the scale harness's steady-state unit of work: one
// app's demand shifts slightly and Propagate recomputes it
// incrementally. i selects the app and perturbs the demand
// deterministically.
func (p *Platform) SteadyTick(i int) {
	apps := p.Cluster.NumApps()
	if apps == 0 {
		return
	}
	app := cluster.AppID(i % apps)
	d := p.appDemandOf(app)
	d.CPU = 1 + float64(i%7)*0.05
	d.Mbps = 2 + float64(i%5)*0.1
	p.SetAppDemand(app, d)
}
