package core

import (
	"megadc/internal/cluster"
	"megadc/internal/lbswitch"
)

// BackendScan computes the healthy backend serving capacity behind a
// switch: the summed CPU slices of the running VMs whose RIPs are
// configured under the switch's VIPs, skipping VMs on non-serving
// servers. The request engine (internal/requests) derives each switch
// queue's service rate from this number, so a pod failure or a drain
// visibly slows the queue instead of silently vanishing from the model.
//
// The scan owns reusable scratch buffers: refreshing capacity for every
// switch each control interval is allocation-free after warm-up, which
// keeps the request engine off the allocator even at 10K switches.
type BackendScan struct {
	p    *Platform
	rips []lbswitch.RIP
	tags []int64
	mbps []float64
}

// NewBackendScan returns a scan bound to the platform.
func (p *Platform) NewBackendScan() *BackendScan { return &BackendScan{p: p} }

// SwitchCPU returns the healthy backend CPU (cores) behind switch id.
// A non-serving switch black-holes its traffic, so its capacity is 0
// regardless of backend health. RIP entries resolve to VMs through the
// dense tag the platform stamps at deploy time, falling back to the
// string-keyed RIP table for entries configured outside the platform
// (hand-built tests, forced transfers).
func (bs *BackendScan) SwitchCPU(id lbswitch.SwitchID) float64 {
	p := bs.p
	sw := p.Fabric.Switch(id)
	if sw == nil || !sw.Serving() {
		return 0
	}
	var cpu float64
	for _, vip := range sw.VIPOrder() {
		bs.rips, bs.tags, bs.mbps = bs.rips[:0], bs.tags[:0], bs.mbps[:0]
		var err error
		bs.rips, bs.tags, bs.mbps, err = sw.AppendVIPLoadShareTagged(vip, 0, bs.rips, bs.tags, bs.mbps)
		if err != nil {
			continue
		}
		for i, tag := range bs.tags {
			var vm *cluster.VM
			if tag >= 0 {
				vm = p.Cluster.VM(cluster.VMID(tag))
			} else if vmID, ok := p.VMForRIP(bs.rips[i]); ok {
				vm = p.Cluster.VM(vmID)
			}
			if vm == nil || vm.State != cluster.VMRunning {
				continue
			}
			if srv := p.Cluster.Server(vm.Server); srv == nil || !srv.Serving() {
				continue
			}
			cpu += vm.Slice.CPU
		}
	}
	return cpu
}
