package core

import (
	"fmt"
	"testing"

	"megadc/internal/cluster"
)

// allocTestPlatform builds a platform with enough demand-carrying apps
// to clear parallelThreshold, fully warmed up (tables grown, ledgers
// and scratch at steady capacity, pool spawned if workers > 1).
func allocTestPlatform(t testing.TB, workers int) *Platform {
	topo := SmallTopology()
	cfg := DefaultConfig()
	cfg.VIPsPerApp = 2
	cfg.PropagateWorkers = workers
	cfg.PropagateFullEvery = -1 // isolate each path under measurement
	p, err := NewPlatform(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*parallelThreshold; i++ {
		d := Demand{CPU: 0.5 + float64(i%7)*0.31, Mbps: 10 + float64(i%11)*3.7}
		if _, err := p.OnboardApp(fmt.Sprintf("al-%d", i),
			cluster.Resources{CPU: 0.2, MemMB: 128, NetMbps: 8}, 1, d); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		p.PropagateFull() // warm every buffer on both paths
	}
	return p
}

// TestPropagateStadyTickAllocFree pins the steady-state incremental
// tick — one app's demand changes, Propagate recomputes it — at zero
// heap allocations.
func TestPropagateSteadyTickAllocFree(t *testing.T) {
	p := allocTestPlatform(t, 1)
	apps := p.Cluster.AppIDs()
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		app := apps[i%len(apps)]
		p.SetAppDemand(app, Demand{CPU: 0.5 + float64(i%5)*0.1, Mbps: 10 + float64(i%3)})
		i++
	}); n != 0 {
		t.Fatalf("steady incremental tick allocates %v times, want 0", n)
	}
}

// TestPropagateFullAllocFree pins the sequential full recompute at zero
// heap allocations once warm.
func TestPropagateFullAllocFree(t *testing.T) {
	p := allocTestPlatform(t, 1)
	if n := testing.AllocsPerRun(100, func() { p.PropagateFull() }); n != 0 {
		t.Fatalf("sequential full recompute allocates %v times, want 0", n)
	}
}

// TestPropagateParallelAllocFree pins the parallel compute phase —
// persistent pool, per-worker scratch, channel handoff — at zero heap
// allocations once warm, on both the full and the dirty path.
func TestPropagateParallelAllocFree(t *testing.T) {
	p := allocTestPlatform(t, 4)
	if n := testing.AllocsPerRun(100, func() { p.PropagateFull() }); n != 0 {
		t.Fatalf("parallel full recompute allocates %v times, want 0", n)
	}
	// Dirty set wide enough to fan out (≥ parallelThreshold, < half the
	// demand apps so the dirty path is taken), warmed once first.
	apps := p.Cluster.AppIDs()
	if 2*parallelThreshold >= len(apps) {
		t.Fatalf("dirty set %d would trigger the full path over %d apps", parallelThreshold, len(apps))
	}
	dirtyPass := func() {
		for i := 0; i < parallelThreshold; i++ {
			p.markAppDirty(apps[i])
		}
		p.Propagate()
	}
	dirtyPass()
	if n := testing.AllocsPerRun(100, dirtyPass); n != 0 {
		t.Fatalf("parallel dirty recompute allocates %v times, want 0", n)
	}
}
