package core

// Invariant auditor (DESIGN.md §9). Platform.Audit walks every substrate
// and checks the cross-layer conservation laws the paper's architecture
// implies. Each law has a stable invariant ID cited by regression tests:
//
//	I1.* VIP/RIP bidirectional consistency (viprip ↔ lbswitch ↔ cluster)
//	I2.* DNS share sums and generation monotonicity (dnsctl)
//	I3.* capacity accounting and fault-snapshot discipline (cluster)
//	I4.* fluid+session demand conservation (core, sessions)
//	I5.* link/switch load decomposition and limits (netmodel, lbswitch)
//
// Violations are structured audit.Violation records, never panics; the
// Propagate hook (Config.AuditEvery / Config.AuditOnChange) accumulates
// them and AuditErr gates end-of-run success on an empty set.

import (
	"fmt"
	"math"
	"slices"

	"megadc/internal/audit"
	"megadc/internal/cluster"
	"megadc/internal/health"
	"megadc/internal/ids"
	"megadc/internal/lbswitch"
	"megadc/internal/trace"
)

// maxAuditViolations bounds what the periodic hook stores; a broken run
// repeats the same violations every audited tick.
const maxAuditViolations = 64

// Audit runs one full invariant walk and returns its report. It is
// cheap relative to a full recompute but still O(platform); use
// Config.AuditEvery to bound the overhead in long runs.
func (p *Platform) Audit() *audit.Report {
	rep := audit.NewReport(p.seed, p.propagateTicks)
	p.auditVIPRIP(rep)
	p.auditDNS(rep)
	p.auditCapacity(rep)
	p.auditConservation(rep)
	p.auditNetwork(rep)
	p.lastAuditCount = len(rep.Violations)
	// Flight-recorder integration: attach the per-entity event timeline
	// to each violation before recording the audit event itself, so the
	// timeline ends at the state the auditor observed.
	rep.AttachTimelines(p.Cfg.Trace)
	p.Cfg.Trace.Record(trace.EvAudit, float64(len(rep.Violations)), float64(p.propagateTicks))
	return rep
}

// AuditViolations returns the violations accumulated by the periodic
// audit hook since the platform was built.
func (p *Platform) AuditViolations() []audit.Violation {
	return slices.Clone(p.auditViolations)
}

// AuditErr runs one final audit walk and returns an error when it — or
// any earlier periodic audit — found violations. The cmd binaries and
// the experiment harness use it as the end-of-run gate.
func (p *Platform) AuditErr() error {
	if err := p.Audit().Err(); err != nil {
		return err
	}
	if n := len(p.auditViolations); n > 0 {
		return fmt.Errorf("audit: %d violation(s) accumulated during the run (first: %s)",
			int64(n)+p.auditDropped, p.auditViolations[0])
	}
	return nil
}

// maybeAudit is the Propagate hook: it audits when the tick matches
// Config.AuditEvery (or always under AuditOnChange) and accumulates any
// violations, capped at maxAuditViolations.
func (p *Platform) maybeAudit() {
	if !p.Cfg.AuditOnChange &&
		(p.Cfg.AuditEvery <= 0 || p.propagateTicks%int64(p.Cfg.AuditEvery) != 0) {
		return
	}
	rep := p.Audit()
	for _, v := range rep.Violations {
		if len(p.auditViolations) >= maxAuditViolations {
			p.auditDropped++
			continue
		}
		p.auditViolations = append(p.auditViolations, v)
	}
}

// auditVIPRIP checks I1: every RIP configured on a switch backs exactly
// one registered VM, the RIP↔VM index is a bijection over live VMs, and
// every VIP DNS exposes is homed on a switch.
func (p *Platform) auditVIPRIP(rep *audit.Report) {
	if err := p.Fabric.CheckInvariants(); err != nil {
		rep.Add("lbswitch", "I1.FABRIC", "consistent switch tables", err.Error(), "")
	}
	// Reports sort by external RIP string, not intern index, so the
	// violation order never depends on interning history.
	rips := make([]lbswitch.RIP, 0, len(p.ripVM))
	for ri, vm := range p.ripVM {
		if vm < 0 {
			continue
		}
		rips = append(rips, p.ripIx.Key(ids.Index(ri)))
	}
	slices.Sort(rips)
	for _, rip := range rips {
		ri, _ := p.ripIx.Lookup(rip)
		vm := p.ripVM[ri]
		if int(vm) >= len(p.vmRIP) || p.vmRIP[vm] != ri {
			back := lbswitch.RIP("")
			if int(vm) < len(p.vmRIP) && p.vmRIP[vm] != ids.None {
				back = p.ripIx.Key(p.vmRIP[vm])
			}
			rep.Addf("viprip", "I1.RIP_VM_BIJECTION",
				fmt.Sprintf("vmRIP[%d] == %s", vm, rip), string(back),
				"rip %s", rip)
		}
		if p.Cluster.VM(vm) == nil {
			rep.Addf("viprip", "I1.RIP_LIVE_VM",
				"every indexed RIP backs a live VM", "VM missing from cluster",
				"rip %s -> vm %d", rip, vm)
		}
		if p.ripHome[ri] == ids.None {
			rep.Addf("viprip", "I1.RIP_HOME_KNOWN",
				"every indexed RIP has a home VIP", "no home-VIP entry",
				"rip %s", rip)
		}
	}
	for vmi, ri := range p.vmRIP {
		if ri == ids.None {
			continue
		}
		vm := cluster.VMID(vmi)
		rip := p.ripIx.Key(ri)
		if int(ri) >= len(p.ripVM) || p.ripVM[ri] != vm {
			back := cluster.VMID(-1)
			if int(ri) < len(p.ripVM) {
				back = p.ripVM[ri]
			}
			rep.Addf("viprip", "I1.RIP_VM_BIJECTION",
				fmt.Sprintf("ripVM[%s] == %d", rip, vm), fmt.Sprintf("%d", back),
				"vm %d", vm)
		}
	}
	// Every VM placed through the platform serves through a RIP.
	for _, vmID := range p.Cluster.VMIDs() {
		if int(vmID) >= len(p.vmRIP) || p.vmRIP[vmID] == ids.None {
			rep.Addf("viprip", "I1.VM_HAS_RIP",
				"every placed VM has a RIP", "no RIP configured",
				"vm %d", vmID)
		}
	}
	// Every RIP a switch load-balances to is registered and configured
	// under its recorded home VIP (no orphan RIPs receiving traffic).
	for _, sw := range p.Fabric.Switches() {
		for _, vip := range sw.VIPs() {
			swRIPs, _, err := sw.Weights(vip)
			if err != nil {
				continue
			}
			for _, rip := range swRIPs {
				ri, known := p.ripIx.Lookup(rip)
				if known && (int(ri) >= len(p.ripVM) || p.ripVM[ri] < 0) {
					known = false
				}
				if !known {
					rep.Addf("viprip", "I1.NO_ORPHAN_RIP",
						"every switch-configured RIP is registered", "unknown RIP",
						"switch %d vip %s rip %s", sw.ID, vip, rip)
					continue
				}
				if hi := p.ripHome[ri]; hi != ids.None {
					if home := p.vipIx.Key(hi); home != vip {
						rep.Addf("viprip", "I1.RIP_HOME_MATCH",
							fmt.Sprintf("rip %s configured under its home VIP %s", rip, home),
							string(vip), "switch %d", sw.ID)
					}
				}
			}
		}
	}
	// Exposed VIPs must be homed — clients resolving to an unhomed VIP
	// reach a dead address.
	for _, app := range p.DNS.Apps() {
		vips, weights, err := p.DNS.Weights(app)
		if err != nil {
			continue
		}
		for i, vipStr := range vips {
			if weights[i] <= 0 {
				continue
			}
			if _, ok := p.Fabric.HomeOf(lbswitch.VIP(vipStr)); !ok {
				rep.Addf("viprip", "I1.EXPOSED_HOMED",
					"every DNS-exposed VIP is homed on a switch", "no fabric home",
					"app %d vip %s", app, vipStr)
			}
		}
	}
}

// auditDNS checks I2: per-app expected shares sum to 1 (or are all zero
// when nothing is exposed), weights are non-negative, and the record
// generation never moves backwards.
func (p *Platform) auditDNS(rep *audit.Report) {
	for _, app := range p.DNS.Apps() {
		_, weights, err := p.DNS.Weights(app)
		if err != nil {
			continue
		}
		var total float64
		for i, w := range weights {
			if w < 0 {
				rep.Addf("dnsctl", "I2.WEIGHT_NONNEG",
					"weight >= 0", fmt.Sprintf("%v", w), "app %d vip #%d", app, i)
			}
			total += w
		}
		_, shares, err := p.DNS.ExpectedShares(app)
		if err == nil {
			var sum float64
			for _, s := range shares {
				sum += s
			}
			if total > 0 {
				if d := sum - 1; d > 1e-9 || d < -1e-9 {
					rep.Addf("dnsctl", "I2.SHARE_SUM",
						"shares sum to 1", fmt.Sprintf("%v", sum), "app %d", app)
				}
			} else if sum != 0 {
				rep.Addf("dnsctl", "I2.SHARE_SUM",
					"all-zero shares for an unexposed app", fmt.Sprintf("%v", sum),
					"app %d", app)
			}
		}
		gen := p.DNS.Gen(app)
		p.auditLastGen = growSlice(p.auditLastGen, int(app)+1)
		if last := p.auditLastGen[app]; gen < last {
			rep.Addf("dnsctl", "I2.GEN_MONOTONE",
				fmt.Sprintf("generation >= %d", last), fmt.Sprintf("%d", gen),
				"app %d", app)
		}
		p.auditLastGen[app] = gen
	}
}

// auditCapacity checks I3: cluster accounting (server used == Σ slices
// ≤ capacity), pod used ≤ pod capacity, and the fault-snapshot
// discipline — a component is non-healthy iff a pre-failure snapshot
// exists, undetected faults leave capacity untouched (so repair restores
// exactly, with no double-count), and detected components hold zero
// capacity until repaired.
func (p *Platform) auditCapacity(rep *audit.Report) {
	if err := p.Cluster.CheckInvariants(); err != nil {
		rep.Add("cluster", "I3.CLUSTER", "consistent cluster accounting", err.Error(), "")
	}
	for _, pod := range p.Cluster.PodIDs() {
		used, capacity := p.Cluster.PodUsed(pod), p.Cluster.PodCapacity(pod)
		if !fitsWithSlack(used, capacity) {
			rep.Addf("cluster", "I3.POD_CAPACITY",
				fmt.Sprintf("pod used ≤ capacity %v", capacity), used.String(),
				"pod %d", pod)
		}
	}
	for _, id := range p.Cluster.ServerIDs() {
		srv := p.Cluster.Server(id)
		snap, hasSnap := p.srvSnap[id]
		if (srv.Health != health.Healthy) != hasSnap {
			rep.Addf("cluster", "I3.SNAPSHOT_IFF_FAULTED",
				"snapshot present iff server non-healthy",
				fmt.Sprintf("health=%v snapshot=%v", srv.Health, hasSnap),
				"server %d", id)
			continue
		}
		switch srv.Health {
		case health.FailedUndetected:
			if srv.Capacity != snap {
				rep.Addf("cluster", "I3.SNAPSHOT_EXACT",
					fmt.Sprintf("undetected fault keeps capacity %v", snap),
					srv.Capacity.String(), "server %d", id)
			}
		case health.Repairing, health.FailedDetected:
			if !srv.Capacity.IsZero() {
				rep.Addf("cluster", "I3.DETECTED_ZEROED",
					"detected server holds zero capacity", srv.Capacity.String(),
					"server %d", id)
			}
		}
	}
	for _, sw := range p.Fabric.Switches() {
		snap, hasSnap := p.swSnap[sw.ID]
		if (sw.Health != health.Healthy) != hasSnap {
			rep.Addf("lbswitch", "I3.SNAPSHOT_IFF_FAULTED",
				"snapshot present iff switch non-healthy",
				fmt.Sprintf("health=%v snapshot=%v", sw.Health, hasSnap),
				"switch %d", sw.ID)
			continue
		}
		switch sw.Health {
		case health.FailedUndetected:
			if sw.Limits != snap {
				rep.Addf("lbswitch", "I3.SNAPSHOT_EXACT",
					fmt.Sprintf("undetected fault keeps limits %+v", snap),
					fmt.Sprintf("%+v", sw.Limits), "switch %d", sw.ID)
			}
		case health.Repairing, health.FailedDetected:
			if sw.Limits != (lbswitch.Limits{}) {
				rep.Addf("lbswitch", "I3.DETECTED_ZEROED",
					"detected switch holds zero limits",
					fmt.Sprintf("%+v", sw.Limits), "switch %d", sw.ID)
			}
		}
	}
	for _, l := range p.Net.Links() {
		snap, hasSnap := p.linkSnap[l.ID]
		if (l.Health != health.Healthy) != hasSnap {
			rep.Addf("netmodel", "I3.SNAPSHOT_IFF_FAULTED",
				"snapshot present iff link non-healthy",
				fmt.Sprintf("health=%v snapshot=%v", l.Health, hasSnap),
				"link %d", l.ID)
			continue
		}
		switch l.Health {
		case health.FailedUndetected:
			if l.CapacityMbps != snap {
				rep.Addf("netmodel", "I3.SNAPSHOT_EXACT",
					fmt.Sprintf("undetected fault keeps capacity %v", snap),
					fmt.Sprintf("%v", l.CapacityMbps), "link %d", l.ID)
			}
		case health.Repairing, health.FailedDetected:
			if l.CapacityMbps != 0 {
				rep.Addf("netmodel", "I3.DETECTED_ZEROED",
					"detected link holds zero capacity",
					fmt.Sprintf("%v", l.CapacityMbps), "link %d", l.ID)
			}
		}
	}
}

// auditConservation checks I4: every observable equals its canonical
// fluid+session sum, bit for bit — per-VIP network traffic, per-VIP
// switch load, and per-VM demand. Session overlays are non-negative.
// (The per-driver session-outcome conservation lives in
// sessions.Driver.Audit, which sees the outcome counters.)
func (p *Platform) auditConservation(rep *audit.Report) {
	vips := make([]lbswitch.VIP, 0, len(p.vipOwner))
	for vi, owner := range p.vipOwner {
		if owner < 0 {
			continue
		}
		vips = append(vips, p.vipIx.Key(ids.Index(vi)))
	}
	slices.Sort(vips)
	for _, vip := range vips {
		vi, _ := p.vipIx.Lookup(vip)
		sess := p.sessVIP.get(vi)
		if sess < 0 {
			rep.Addf("core", "I4.SESS_NONNEG",
				"session overlay >= 0", fmt.Sprintf("%v", sess), "vip %s", vip)
		}
		want := p.fluidTraffic.get(vi) + sess
		got := p.Net.VIPTraffic(string(vip))
		if math.Float64bits(got) != math.Float64bits(want) {
			rep.Addf("core", "I4.VIP_TRAFFIC_SUM",
				fmt.Sprintf("traffic == fluid+session == %v", want),
				fmt.Sprintf("%v", got), "vip %s", vip)
		}
		if home, ok := p.Fabric.HomeOf(vip); ok {
			wantSw := p.fluidSwLoad.get(vi) + sess
			gotSw := p.Fabric.Switch(home).VIPLoad(vip)
			if math.Float64bits(gotSw) != math.Float64bits(wantSw) {
				rep.Addf("core", "I4.SWITCH_LOAD_SUM",
					fmt.Sprintf("switch load == fluid+session == %v", wantSw),
					fmt.Sprintf("%v", gotSw), "vip %s on switch %d", vip, home)
			}
		}
	}
	for vmi, ri := range p.vmRIP {
		if ri == ids.None {
			continue
		}
		vmID := cluster.VMID(vmi)
		vm := p.Cluster.VM(vmID)
		if vm == nil {
			continue // I1.RIP_LIVE_VM already flagged it
		}
		sess := p.sessVM.get(ids.Index(vmi))
		if !sess.NonNegative() {
			rep.Addf("core", "I4.SESS_NONNEG",
				"session overlay >= 0", sess.String(), "vm %d", vmID)
		}
		want := sess.Add(p.fluidVM.get(ids.Index(vmi)))
		if !sameBits(vm.Demand, want) {
			rep.Addf("core", "I4.VM_DEMAND_SUM",
				fmt.Sprintf("VM demand == session+fluid == %v", want),
				vm.Demand.String(), "vm %d", vmID)
		}
	}
}

// auditNetwork checks I5: link loads decompose into per-VIP route
// shares, and (when Config.AuditOverloadUtil is set) no link or switch
// exceeds the modeled utilization ceiling. The overload check is opt-in
// because several experiments overload links on purpose (EXPERIMENTS.md
// E4/E9).
func (p *Platform) auditNetwork(rep *audit.Report) {
	if err := p.Net.CheckInvariants(); err != nil {
		rep.Add("netmodel", "I5.LINK_DECOMP", "link loads equal per-VIP shares", err.Error(), "")
	}
	limit := p.Cfg.AuditOverloadUtil
	if limit <= 0 {
		return
	}
	for _, l := range p.Net.Links() {
		if u := l.Utilization(); u > limit {
			rep.Addf("netmodel", "I5.LINK_OVERLOAD",
				fmt.Sprintf("link utilization <= %v", limit), fmt.Sprintf("%v", u),
				"link %d", l.ID)
		}
	}
	for _, sw := range p.Fabric.Switches() {
		if u := sw.BottleneckUtilization(); u > limit {
			rep.Addf("lbswitch", "I5.SWITCH_OVERLOAD",
				fmt.Sprintf("switch utilization <= %v", limit), fmt.Sprintf("%v", u),
				"switch %d", sw.ID)
		}
	}
}

// fitsWithSlack is Resources.Fits with a relative float tolerance: pod
// sums accumulate in sorted order, but used and capacity are still sums
// of many terms.
func fitsWithSlack(r, c cluster.Resources) bool {
	within := func(x, lim float64) bool { return x <= lim+1e-9*(1+math.Abs(lim)) }
	return within(r.CPU, c.CPU) && within(r.MemMB, c.MemMB) && within(r.NetMbps, c.NetMbps)
}

// sameBits compares two Resources values bit-for-bit per component.
func sameBits(a, b cluster.Resources) bool {
	return math.Float64bits(a.CPU) == math.Float64bits(b.CPU) &&
		math.Float64bits(a.MemMB) == math.Float64bits(b.MemMB) &&
		math.Float64bits(a.NetMbps) == math.Float64bits(b.NetMbps)
}
