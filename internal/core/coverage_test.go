package core

import (
	"math"
	"testing"

	"megadc/internal/cluster"
	"megadc/internal/lbswitch"
)

// TestKnobCVacatesLoadedDonorServer covers the vacate-then-transfer path
// where the donor server actually hosts VMs that must be rehomed inside
// the donor pod before the server moves.
func TestKnobCVacatesLoadedDonorServer(t *testing.T) {
	cfg := testConfig().WithKnobs(KnobServerTransfer)
	topo := SmallTopology()
	topo.Pods = 2
	topo.ServersPerPod = 4
	p, err := NewPlatform(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pods := p.Cluster.PodIDs()
	// Donor pod (pod 1): a light app with one VM on every server, so
	// whichever server is vacated has a VM to rehome.
	donorApp, err := p.OnboardApp("donor", defaultSlice(), 0, Demand{})
	if err != nil {
		t.Fatal(err)
	}
	for range p.Cluster.Pod(pods[1]).ServerIDs() {
		if _, err := p.DeployInstance(donorApp.ID, pods[1]); err != nil {
			t.Fatal(err)
		}
	}
	p.SetAppDemand(donorApp.ID, Demand{CPU: 2, Mbps: 20}) // pod1 util 2/32

	// Hot pod (pod 0).
	hot, err := p.OnboardApp("hot", defaultSlice(), 0, Demand{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := p.DeployInstance(hot.ID, pods[0]); err != nil {
			t.Fatal(err)
		}
	}
	p.SetAppDemand(hot.ID, Demand{CPU: 30, Mbps: 100})

	nDonorVMs := p.Cluster.PodNumVMs(pods[1])
	p.Global.Step()
	p.Eng.RunFor(cfg.VacateLatencyPerVM*4 + cfg.VMMigrateLatency + 10)
	if p.Global.ServerTransfers != 1 {
		t.Fatalf("transfers = %d", p.Global.ServerTransfers)
	}
	// The donor's VMs were all rehomed: pod 1 keeps its VM count even
	// though it lost a server.
	if got := p.Cluster.PodNumVMs(pods[1]); got != nDonorVMs {
		t.Errorf("donor pod VMs = %d, want %d (rehomed, not lost)", got, nDonorVMs)
	}
	if got := p.Cluster.Pod(pods[1]).NumServers(); got != 3 {
		t.Errorf("donor servers = %d, want 3", got)
	}
	// The transferred server arrived empty.
	for _, sid := range p.Cluster.Pod(pods[0]).ServerIDs() {
		srv := p.Cluster.Server(sid)
		if srv.NumVMs() == 0 && srv.Pod == pods[0] {
			return // found the fresh empty server
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionOverlayDirect unit-tests the SessionOpened/SessionClosed
// hooks without the sessions driver.
func TestSessionOverlayDirect(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	app, err := p.OnboardApp("a", defaultSlice(), 2, Demand{CPU: 1, Mbps: 100})
	if err != nil {
		t.Fatal(err)
	}
	vip := p.Fabric.VIPsOfApp(app.ID)[0]
	vmID := app.VMIDs()[0]
	res := cluster.Resources{CPU: 0.5, NetMbps: 20}
	baseVM := p.Cluster.VM(vmID).Demand
	baseFabric := p.Fabric.TotalThroughputMbps()

	p.SessionOpened(vip, vmID, res)
	if got := p.Cluster.VM(vmID).Demand.CPU; math.Abs(got-baseVM.CPU-0.5) > 1e-9 {
		t.Errorf("VM CPU demand = %v", got)
	}
	if got := p.Fabric.TotalThroughputMbps(); math.Abs(got-baseFabric-20) > 1e-9 {
		t.Errorf("fabric load = %v", got)
	}
	// Propagate must reproduce the same state from the overlay.
	p.Propagate()
	if got := p.Cluster.VM(vmID).Demand.CPU; math.Abs(got-baseVM.CPU-0.5) > 1e-9 {
		t.Errorf("after Propagate, VM CPU = %v", got)
	}
	p.SessionClosed(vip, vmID, res)
	if got := p.Cluster.VM(vmID).Demand.CPU; math.Abs(got-baseVM.CPU) > 1e-9 {
		t.Errorf("after close, VM CPU = %v", got)
	}
	if got := p.Fabric.TotalThroughputMbps(); math.Abs(got-baseFabric) > 1e-9 {
		t.Errorf("after close, fabric = %v", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionClosedAfterVMRemoval covers the guard paths: closing a
// session whose VM has been removed must not corrupt state.
func TestSessionClosedAfterVMRemoval(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	app, _ := p.OnboardApp("a", defaultSlice(), 2, Demand{})
	vip := p.Fabric.VIPsOfApp(app.ID)[0]
	vmID := app.VMIDs()[0]
	res := cluster.Resources{CPU: 0.5, NetMbps: 20}
	p.SessionOpened(vip, vmID, res)
	if err := p.RemoveInstance(vmID); err != nil {
		t.Fatal(err)
	}
	p.SessionClosed(vip, vmID, res) // must not panic or corrupt
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSuppressBlocksReconcile covers the Suppress/reconcile interaction
// used by the drain protocol.
func TestSuppressBlocksReconcile(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	app, _ := p.OnboardApp("a", defaultSlice(), 2, Demand{CPU: 1, Mbps: 10})
	vips := p.DNS.VIPs(app.ID)
	vip := lbswitch.VIP(vips[0])
	// Drain-style: suppress and hide.
	p.Suppress(vip, true)
	p.DNS.SetWeight(app.ID, vips[0], 0)
	// A deploy triggers reconcileExposure; the suppressed VIP must stay
	// hidden even though it has RIPs.
	if _, err := p.DeployInstance(app.ID, p.Cluster.PodIDs()[0]); err != nil {
		t.Fatal(err)
	}
	_, ws, _ := p.DNS.Weights(app.ID)
	if ws[0] != 0 {
		t.Error("suppressed VIP was re-exposed by reconcile")
	}
	// Unsuppress: the next reconcile re-exposes it.
	p.Suppress(vip, false)
	if _, err := p.DeployInstance(app.ID, p.Cluster.PodIDs()[1]); err != nil {
		t.Fatal(err)
	}
	_, ws, _ = p.DNS.Weights(app.ID)
	if ws[0] == 0 {
		t.Error("unsuppressed VIP with RIPs not re-exposed")
	}
}

// TestRecoverLostCapacityBounds covers the maxDeploys cap.
func TestRecoverLostCapacityBounds(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	app, _ := p.OnboardApp("a", defaultSlice(), 4, Demand{CPU: 8, Mbps: 100})
	// Remove two instances: satisfaction drops well below target.
	vms := app.VMIDs()
	p.RemoveInstance(vms[0])
	p.RemoveInstance(vms[1])
	p.Propagate()
	got := p.RecoverLostCapacity(0.99, 1)
	if got != 1 {
		t.Errorf("deploys = %d, want exactly the cap 1", got)
	}
}

// TestPropagateIdempotent: running Propagate twice yields identical
// state — the managers may call it after every action without drift.
func TestPropagateIdempotent(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	for i := 0; i < 4; i++ {
		if _, err := p.OnboardApp("a", defaultSlice(), 3, Demand{CPU: 2, Mbps: 150}); err != nil {
			t.Fatal(err)
		}
	}
	// Add a session overlay for good measure.
	app0 := p.Cluster.AppIDs()[0]
	vip := p.Fabric.VIPsOfApp(app0)[0]
	p.SessionOpened(vip, p.Cluster.App(app0).VMIDs()[0], cluster.Resources{CPU: 0.3, NetMbps: 10})

	snapshot := func() (vm map[cluster.VMID]cluster.Resources, links []float64, fabric float64) {
		vm = make(map[cluster.VMID]cluster.Resources)
		for _, id := range p.Cluster.VMIDs() {
			vm[id] = p.Cluster.VM(id).Demand
		}
		return vm, p.Net.LinkLoads(), p.Fabric.TotalThroughputMbps()
	}
	p.Propagate()
	vm1, links1, fab1 := snapshot()
	p.Propagate()
	vm2, links2, fab2 := snapshot()
	for id, d := range vm1 {
		if vm2[id] != d {
			t.Errorf("vm %d demand drifted: %v -> %v", id, d, vm2[id])
		}
	}
	for i := range links1 {
		if math.Abs(links1[i]-links2[i]) > 1e-9 {
			t.Errorf("link %d drifted: %v -> %v", i, links1[i], links2[i])
		}
	}
	if math.Abs(fab1-fab2) > 1e-9 {
		t.Errorf("fabric drifted: %v -> %v", fab1, fab2)
	}
}

// TestPodManagerAccessors covers small read paths.
func TestPodManagerAccessors(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	pm := p.PodManagers()[0]
	if pm.PodID() != p.Cluster.PodIDs()[0] {
		t.Error("PodID mismatch")
	}
	// defaultSlice falls back to the app's DefaultSlice when the
	// platform has no record (apps created outside OnboardApp).
	a := p.Cluster.AddApp("raw", cluster.Resources{CPU: 2})
	if got := pm.defaultSlice(a.ID); got.CPU != 2 {
		t.Errorf("defaultSlice fallback = %v", got)
	}
	if got := pm.defaultSlice(9999); !got.IsZero() {
		t.Errorf("missing app slice = %v", got)
	}
}
