package baseline_test

import (
	"fmt"

	"megadc/internal/baseline"
)

// The statistical-multiplexing argument: the same stochastic demand on
// one shared data center vs 16 isolated partitions.
func ExampleRunMultiplexing() {
	cfg := baseline.DefaultMuxConfig()
	cfg.Trials = 400
	results, err := baseline.RunMultiplexing(cfg, []int{1, 16})
	if err != nil {
		panic(err)
	}
	shared, parts := results[0], results[1]
	fmt.Printf("shared DC overloads rarely: %v\n", shared.OverloadProb < 0.05)
	fmt.Printf("16 partitions overload often: %v\n", parts.OverloadProb > 0.5)
	fmt.Printf("same mean utilization: %v\n", shared.MeanUtilization == parts.MeanUtilization)
	// Output:
	// shared DC overloads rarely: true
	// 16 partitions overload often: true
	// same mean utilization: true
}
