// Package baseline implements the comparison points the paper argues
// against: naive VIP re-advertisement traffic engineering (Section IV-A's
// "naive way") versus selective VIP exposure, and the compartmentalized
// (partitioned) data center versus the shared mega data center (the
// statistical-multiplexing argument of Section I).
package baseline

import (
	"fmt"

	"megadc/internal/dnsctl"
	"megadc/internal/metrics"
	"megadc/internal/sim"
)

// TEConfig parameterizes the access-link traffic-engineering experiment
// (E4). One application's traffic overloads a hot link; the strategy
// under test must move enough load to a cold link. Load is carried by
// discrete sessions so both the DNS-cache dynamics (selective exposure)
// and the session-pinning dynamics (re-advertisement) appear.
type TEConfig struct {
	LinkCapacityMbps float64 // both links
	SessionMbps      float64 // bandwidth per session
	ArrivalRate      float64 // sessions/second (constant)
	MeanSessionSec   float64 // exponential session duration
	TargetUtil       float64 // relief declared when hot-link util < this

	DNSTTLSeconds    float64 // selective exposure: record TTL
	ViolatorFraction float64 // fraction of TTL-violating clients
	ViolationHoldSec float64 // how long violators hold stale entries

	BGPConvergenceSec float64 // re-advertisement: time for new routes to take effect
	PadSafetySec      float64 // wait between padding old route and withdrawing it

	WarmupSec  float64 // run before the intervention to load the hot link
	HorizonSec float64
	Seed       int64
}

// DefaultTEConfig returns the E4 configuration.
func DefaultTEConfig() TEConfig {
	return TEConfig{
		LinkCapacityMbps:  1000,
		SessionMbps:       2,
		ArrivalRate:       12, // ≈ 12·2·50 = 1200 Mbps offered at steady state
		MeanSessionSec:    50,
		TargetUtil:        0.9,
		DNSTTLSeconds:     60,
		ViolatorFraction:  0.1,
		ViolationHoldSec:  600,
		BGPConvergenceSec: 60,
		PadSafetySec:      120,
		WarmupSec:         600,
		HorizonSec:        3000,
		Seed:              42,
	}
}

// TEResult reports one strategy's outcome.
type TEResult struct {
	Strategy      string
	ReliefTime    float64 // seconds from intervention until hot util < target; -1 if never
	RouteUpdates  int64
	HotTimeline   *metrics.Series // hot-link utilization over time (sampled 1/s)
	FinalHotUtil  float64
	FinalColdUtil float64
}

// session bookkeeping shared by both strategies.
type teState struct {
	cfg      TEConfig
	eng      *sim.Engine
	hotMbps  float64
	coldMbps float64
}

func (s *teState) hotUtil() float64  { return s.hotMbps / s.cfg.LinkCapacityMbps }
func (s *teState) coldUtil() float64 { return s.coldMbps / s.cfg.LinkCapacityMbps }

// RunSelectiveExposureTE simulates the paper's knob A: at WarmupSec the
// platform's DNS stops resolving to the hot VIP and exposes the cold
// VIP. New sessions follow DNS immediately (subject to client caches and
// TTL violators); pinned sessions drain at their natural duration.
// No route updates are issued.
func RunSelectiveExposureTE(cfg TEConfig) TEResult {
	eng := sim.New(cfg.Seed)
	st := &teState{cfg: cfg, eng: eng}
	dns := dnsctl.New(cfg.DNSTTLSeconds)
	const app = 1
	dns.Register(app, "hot", 1)
	dns.Register(app, "cold", 0)
	pop, err := dnsctl.NewClientPopulation(dns, app, 2000, cfg.ViolatorFraction, cfg.ViolationHoldSec, eng.Rand())
	if err != nil {
		panic(fmt.Sprintf("baseline: %v", err))
	}

	res := TEResult{Strategy: "selective-exposure", ReliefTime: -1, HotTimeline: &metrics.Series{}}
	// Intervention: flip DNS exposure.
	eng.At(cfg.WarmupSec, func() {
		dns.SetWeight(app, "hot", 0)
		dns.SetWeight(app, "cold", 1)
	})
	scheduleArrivals(st, func() string {
		vip, err := pop.Arrive(eng.Now(), eng.Rand())
		if err != nil {
			return "hot"
		}
		return vip
	})
	runTE(st, &res)
	return res
}

// RunNaiveReadvertTE simulates the baseline: at WarmupSec the operator
// pads the AS path of the hot link's route (1 update) and advertises the
// VIP at the cold link (1 update). New sessions only shift after BGP
// convergence; after a safety period with no new connections on the old
// route, it is withdrawn (1 more update). Pinned sessions drain at their
// natural duration.
func RunNaiveReadvertTE(cfg TEConfig) TEResult {
	eng := sim.New(cfg.Seed)
	st := &teState{cfg: cfg, eng: eng}
	res := TEResult{Strategy: "naive-readvertise", ReliefTime: -1, HotTimeline: &metrics.Series{}}

	converged := false
	eng.At(cfg.WarmupSec, func() {
		res.RouteUpdates += 2 // pad old route + advertise new route
		eng.After(cfg.BGPConvergenceSec, func() { converged = true })
		eng.After(cfg.BGPConvergenceSec+cfg.PadSafetySec, func() {
			res.RouteUpdates++ // withdraw old route
		})
	})
	scheduleArrivals(st, func() string {
		if converged {
			return "cold"
		}
		return "hot"
	})
	runTE(st, &res)
	return res
}

// scheduleArrivals generates Poisson session arrivals; pick returns the
// link ("hot"/"cold") each new session lands on. Sessions add their
// bandwidth to the link for an exponential duration.
func scheduleArrivals(st *teState, pick func() string) {
	cfg := st.cfg
	var arrive func()
	arrive = func() {
		if st.eng.Now() >= cfg.HorizonSec {
			return
		}
		link := pick()
		mbps := cfg.SessionMbps
		if link == "hot" {
			st.hotMbps += mbps
		} else {
			st.coldMbps += mbps
		}
		dur := st.eng.Rand().ExpFloat64() * cfg.MeanSessionSec
		st.eng.After(dur, func() {
			if link == "hot" {
				st.hotMbps -= mbps
			} else {
				st.coldMbps -= mbps
			}
		})
		st.eng.After(st.eng.Rand().ExpFloat64()/cfg.ArrivalRate, arrive)
	}
	st.eng.At(0, arrive)
}

// runTE samples utilization once per second and records relief time.
func runTE(st *teState, res *TEResult) {
	cfg := st.cfg
	st.eng.Every(1, 1, func() bool {
		now := st.eng.Now()
		res.HotTimeline.Record(now, st.hotUtil())
		if res.ReliefTime < 0 && now > cfg.WarmupSec && st.hotUtil() < cfg.TargetUtil {
			res.ReliefTime = now - cfg.WarmupSec
		}
		return now < cfg.HorizonSec
	})
	// "Final" means at the horizon: sessions that would naturally end
	// later must still be counted as load.
	st.eng.At(cfg.HorizonSec, func() {
		res.FinalHotUtil = st.hotUtil()
		res.FinalColdUtil = st.coldUtil()
	})
	st.eng.RunUntil(cfg.HorizonSec)
}
