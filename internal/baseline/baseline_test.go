package baseline

import (
	"math"
	"testing"
)

func fastTECfg() TEConfig {
	cfg := DefaultTEConfig()
	cfg.WarmupSec = 300
	cfg.HorizonSec = 1500
	return cfg
}

func TestSelectiveExposureRelievesLink(t *testing.T) {
	res := RunSelectiveExposureTE(fastTECfg())
	if res.ReliefTime < 0 {
		t.Fatal("selective exposure never relieved the link")
	}
	if res.RouteUpdates != 0 {
		t.Errorf("selective exposure issued %d route updates, want 0", res.RouteUpdates)
	}
	if res.FinalHotUtil > 0.5 {
		t.Errorf("final hot util = %v; load did not move", res.FinalHotUtil)
	}
	if res.FinalColdUtil < 0.5 {
		t.Errorf("final cold util = %v; load did not arrive", res.FinalColdUtil)
	}
}

func TestNaiveReadvertRelievesLinkSlower(t *testing.T) {
	cfg := fastTECfg()
	sel := RunSelectiveExposureTE(cfg)
	naive := RunNaiveReadvertTE(cfg)
	if naive.ReliefTime < 0 {
		t.Fatal("naive re-advertisement never relieved the link")
	}
	if naive.RouteUpdates != 3 {
		t.Errorf("naive route updates = %d, want 3 (pad, advertise, withdraw)", naive.RouteUpdates)
	}
	// The paper's claim: selective exposure relieves sooner (new
	// arrivals shift immediately; naive waits out BGP convergence).
	if naive.ReliefTime <= sel.ReliefTime {
		t.Errorf("naive relief %vs ≤ selective relief %vs; paper expects naive slower",
			naive.ReliefTime, sel.ReliefTime)
	}
}

func TestTEWarmupOverloads(t *testing.T) {
	cfg := fastTECfg()
	res := RunSelectiveExposureTE(cfg)
	// Just before the intervention the hot link must be overloaded,
	// otherwise the experiment tests nothing.
	var utilAtWarmup float64
	for _, pt := range res.HotTimeline.Points() {
		if pt.T <= cfg.WarmupSec {
			utilAtWarmup = pt.V
		}
	}
	if utilAtWarmup < cfg.TargetUtil {
		t.Errorf("hot util at warmup = %v; below target %v", utilAtWarmup, cfg.TargetUtil)
	}
}

func TestTEViolatorsSlowTheDrain(t *testing.T) {
	clean := fastTECfg()
	clean.ViolatorFraction = 0
	dirty := fastTECfg()
	dirty.ViolatorFraction = 0.4
	dirty.ViolationHoldSec = 3000
	r1 := RunSelectiveExposureTE(clean)
	r2 := RunSelectiveExposureTE(dirty)
	if r1.ReliefTime < 0 {
		t.Fatal("clean run never relieved")
	}
	// With 40% violators holding stale entries for the whole horizon,
	// 40% of arrivals keep hitting the hot link: relief is slower or
	// never.
	if r2.ReliefTime >= 0 && r2.ReliefTime <= r1.ReliefTime {
		t.Errorf("violators did not slow relief: %v vs %v", r2.ReliefTime, r1.ReliefTime)
	}
}

func TestMultiplexingSharedBeatsPartitioned(t *testing.T) {
	cfg := DefaultMuxConfig()
	cfg.Trials = 500
	results, err := RunMultiplexing(cfg, []int{1, 4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	// Overload probability must be monotone non-decreasing in partition
	// count (statistical multiplexing argument).
	for i := 1; i < len(results); i++ {
		if results[i].OverloadProb+1e-9 < results[i-1].OverloadProb {
			t.Errorf("overload prob decreased with partitioning: %v", results)
		}
	}
	// Shared DC at 60% mean load with this mix should rarely overload;
	// 64 partitions (≈5 servers each) should overload often.
	if results[0].OverloadProb > 0.2 {
		t.Errorf("shared overload prob = %v, expected small", results[0].OverloadProb)
	}
	if results[3].OverloadProb < 0.5 {
		t.Errorf("64-partition overload prob = %v, expected large", results[3].OverloadProb)
	}
	// Mean utilization is partition-independent (same demand).
	for _, r := range results {
		if math.Abs(r.MeanUtilization-results[0].MeanUtilization) > 0.05 {
			t.Errorf("mean utilization drifted: %v", results)
		}
	}
	// Lost demand grows with partitioning.
	if results[3].LostDemandFrac <= results[0].LostDemandFrac {
		t.Errorf("lost demand did not grow with partitioning: %v", results)
	}
}

func TestMultiplexingValidation(t *testing.T) {
	cfg := DefaultMuxConfig()
	if _, err := RunMultiplexing(cfg, []int{0}); err == nil {
		t.Error("zero partitions accepted")
	}
	if _, err := RunMultiplexing(cfg, []int{cfg.Servers + 1}); err == nil {
		t.Error("more partitions than servers accepted")
	}
	bad := cfg
	bad.Apps = 0
	if _, err := RunMultiplexing(bad, []int{1}); err == nil {
		t.Error("zero apps accepted")
	}
}

func TestMultiplexingDeterministic(t *testing.T) {
	cfg := DefaultMuxConfig()
	cfg.Trials = 200
	a, _ := RunMultiplexing(cfg, []int{1, 8})
	b, _ := RunMultiplexing(cfg, []int{1, 8})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %+v vs %+v", a[i], b[i])
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := percentile(xs, 1); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := percentile(xs, 0.5); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
}
