package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"megadc/internal/workload"
)

// MuxConfig parameterizes the statistical-multiplexing experiment (E9):
// the same applications with stochastic demand are hosted either in one
// shared mega data center or in P isolated partitions (the
// compartmentalization the paper's shared-switch architecture avoids).
type MuxConfig struct {
	Apps          int
	Servers       int     // total servers, split evenly across partitions
	ServerCPU     float64 // cores per server
	MeanDemandCPU float64 // mean demand per app (cores)
	Sigma         float64 // lognormal demand sigma (heavy tail)
	ZipfS         float64 // popularity skew across apps
	Trials        int     // Monte-Carlo epochs
	Seed          int64
}

// DefaultMuxConfig returns the E9 configuration: 300 apps on 120 servers
// (scaled 1000× down from the paper's 300K apps / 300K servers at the
// same apps-per-server ratio is impractical because the paper has 1:1;
// we keep mean total demand ≈ 60% of capacity).
func DefaultMuxConfig() MuxConfig {
	return MuxConfig{
		Apps:          300,
		Servers:       300,
		ServerCPU:     8,
		MeanDemandCPU: 4.8, // 300 × 4.8 = 1440 of 2400 cores ⇒ 60% mean load
		Sigma:         1.0,
		ZipfS:         0.8,
		Trials:        2000,
		Seed:          7,
	}
}

// MuxResult reports overload statistics for one partitioning level.
type MuxResult struct {
	Partitions      int
	OverloadProb    float64 // P(at least one partition's demand > its capacity)
	MeanUtilization float64 // mean of total demand / total capacity
	P99Utilization  float64 // 99th percentile of the per-trial max partition utilization
	LostDemandFrac  float64 // mean fraction of demand above partition capacity
}

// RunMultiplexing evaluates overload probability for each partition
// count. Apps are assigned to partitions round-robin by popularity rank
// (a reasonably fair static assignment); demand per app per trial is an
// independent lognormal around its popularity-scaled mean — the
// unpredictable Internet-application demand the paper's elasticity
// targets.
func RunMultiplexing(cfg MuxConfig, partitionCounts []int) ([]MuxResult, error) {
	if cfg.Apps <= 0 || cfg.Servers <= 0 || cfg.Trials <= 0 {
		return nil, fmt.Errorf("baseline: bad mux config %+v", cfg)
	}
	weights := workload.ZipfWeights(cfg.Apps, cfg.ZipfS)
	// Per-app mean demand: popularity-scaled, normalized so the total
	// mean is Apps × MeanDemandCPU.
	means := make([]float64, cfg.Apps)
	total := cfg.MeanDemandCPU * float64(cfg.Apps)
	for i, w := range weights {
		means[i] = total * w
	}
	// The unit-median lognormal has mean exp(sigma²/2); divide it out so
	// each app's mean demand is exactly means[i].
	meanCorrection := math.Exp(-cfg.Sigma * cfg.Sigma / 2)

	var out []MuxResult
	for _, parts := range partitionCounts {
		if parts <= 0 || parts > cfg.Servers {
			return nil, fmt.Errorf("baseline: partition count %d out of range", parts)
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		// Partition capacities: split servers as evenly as possible.
		capPerPart := make([]float64, parts)
		for s := 0; s < cfg.Servers; s++ {
			capPerPart[s%parts] += cfg.ServerCPU
		}
		// Static app assignment: round-robin by rank.
		appPart := make([]int, cfg.Apps)
		for a := 0; a < cfg.Apps; a++ {
			appPart[a] = a % parts
		}
		overloads := 0
		var sumUtil, sumLost float64
		maxUtils := make([]float64, 0, cfg.Trials)
		demand := make([]float64, parts)
		for trial := 0; trial < cfg.Trials; trial++ {
			for i := range demand {
				demand[i] = 0
			}
			var totDemand float64
			for a := 0; a < cfg.Apps; a++ {
				d := means[a] * workload.LognormalDemand(cfg.Sigma, rng) * meanCorrection
				demand[appPart[a]] += d
				totDemand += d
			}
			over := false
			var lost, maxU float64
			for i := range demand {
				if u := demand[i] / capPerPart[i]; u > maxU {
					maxU = u
				}
				if demand[i] > capPerPart[i] {
					over = true
					lost += demand[i] - capPerPart[i]
				}
			}
			if over {
				overloads++
			}
			sumUtil += totDemand / (cfg.ServerCPU * float64(cfg.Servers))
			if totDemand > 0 {
				sumLost += lost / totDemand
			}
			maxUtils = append(maxUtils, maxU)
		}
		// p99 of max partition utilization.
		p99 := percentile(maxUtils, 0.99)
		out = append(out, MuxResult{
			Partitions:      parts,
			OverloadProb:    float64(overloads) / float64(cfg.Trials),
			MeanUtilization: sumUtil / float64(cfg.Trials),
			P99Utilization:  p99,
			LostDemandFrac:  sumLost / float64(cfg.Trials),
		})
	}
	return out, nil
}

func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Selection by sorting a copy (trial counts are small).
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	idx := int(q * float64(len(cp)-1))
	return cp[idx]
}
