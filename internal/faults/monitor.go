package faults

import (
	"fmt"

	"megadc/internal/core"
	"megadc/internal/metrics"
)

// Monitor samples every application's served and offered CPU demand at
// a fixed interval into a metrics.Availability tracker, turning the
// black-holed demand the injector causes into downtime seconds,
// unserved-demand integrals, and time-to-recover percentiles.
type Monitor struct {
	p        *core.Platform
	interval float64

	// Avail is the tracker fed by the samples; read it after Finish.
	Avail *metrics.Availability
}

// NewMonitor returns a monitor that marks an app down when it serves
// less than threshold (e.g. 0.95) of its demand, sampling every
// interval seconds.
func NewMonitor(p *core.Platform, threshold, interval float64) *Monitor {
	return &Monitor{p: p, interval: interval, Avail: metrics.NewAvailability(threshold)}
}

// Start begins sampling at the current simulated time and stops after
// stopAt (forever when stopAt <= 0).
func (m *Monitor) Start(stopAt float64) {
	m.p.Eng.Every(m.p.Eng.Now(), m.interval, func() bool {
		m.sample()
		return stopAt <= 0 || m.p.Eng.Now() < stopAt
	})
}

// Finish closes the availability integrals at the current simulated
// time. Call once after the run.
func (m *Monitor) Finish() {
	m.sample()
	m.Avail.Finalize(m.p.Eng.Now())
}

func (m *Monitor) sample() {
	t := m.p.Eng.Now()
	for _, app := range m.p.Cluster.AppIDs() {
		served, demand := m.p.AppServedDemand(app)
		m.Avail.Observe(fmt.Sprintf("app-%d", app), t, served, demand)
	}
}
