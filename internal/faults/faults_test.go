package faults

import (
	"fmt"
	"testing"

	"megadc/internal/cluster"
	"megadc/internal/core"
)

// churnPlatform builds a platform with a few onboarded apps, suitable
// for injecting churn into.
func churnPlatform(t *testing.T, seed int64) *core.Platform {
	t.Helper()
	topo := core.SmallTopology()
	topo.Seed = seed
	p, err := core.NewPlatform(topo, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	slice := cluster.Resources{CPU: 1, MemMB: 1024, NetMbps: 100}
	for i := 0; i < 4; i++ {
		if _, err := p.OnboardApp(fmt.Sprintf("app-%d", i), slice, 3,
			core.Demand{CPU: 3, Mbps: 80}); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// aggressiveConfig fails components often enough that a short run sees
// faults in every class, including flaps.
func aggressiveConfig() Config {
	cfg := DefaultConfig()
	cfg.Server = Class{MTBF: 400, MTTR: 60, DetectDelay: 15}
	cfg.Switch = Class{MTBF: 1200, MTTR: 90, DetectDelay: 10}
	cfg.Link = Class{MTBF: 1000, MTTR: 80, DetectDelay: 5}
	cfg.Flap = FlapConfig{MTBF: 900, Cycles: 3, Down: 2, Up: 8}
	return cfg
}

type runResult struct {
	serverFaults, switchFaults, linkFaults int64
	flapEpisodes, flapCycles               int64
	detections, repairs, skipped           int64
	routeUpdates                           int64
	downtime, unserved                     float64
	outages                                int
	satisfaction                           float64
}

// runChurn executes one seeded churn run and returns every observable
// number it produced.
func runChurn(t *testing.T, seed int64) runResult {
	t.Helper()
	p := churnPlatform(t, seed)
	inj := New(p, aggressiveConfig())
	mon := NewMonitor(p, 0.95, 5)
	p.Start()
	inj.Start(2000)
	mon.Start(2000)
	p.Eng.RunUntil(2000)
	mon.Finish()
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}
	return runResult{
		serverFaults: inj.ServerFaults,
		switchFaults: inj.SwitchFaults,
		linkFaults:   inj.LinkFaults,
		flapEpisodes: inj.FlapEpisodes,
		flapCycles:   inj.FlapCycles,
		detections:   inj.Detections,
		repairs:      inj.Repairs,
		skipped:      inj.Skipped,
		routeUpdates: p.Net.RouteUpdates,
		downtime:     mon.Avail.TotalDowntime(),
		unserved:     mon.Avail.TotalUnserved(),
		outages:      mon.Avail.TotalOutages(),
		satisfaction: p.TotalSatisfaction(),
	}
}

// TestInjectorDeterministic is the acceptance criterion: a seeded run
// is bit-for-bit reproducible — two platforms with the same seed and
// configuration produce byte-identical counters and availability
// numbers.
func TestInjectorDeterministic(t *testing.T) {
	a := runChurn(t, 42)
	b := runChurn(t, 42)
	if a != b {
		t.Fatalf("same seed produced different runs:\n  a=%+v\n  b=%+v", a, b)
	}
	if a.serverFaults == 0 || a.switchFaults == 0 || a.linkFaults == 0 || a.flapCycles == 0 {
		t.Fatalf("expected faults in every class, got %+v", a)
	}
	// A different seed must actually change the run, or the comparison
	// above is vacuous.
	c := runChurn(t, 43)
	if a == c {
		t.Fatalf("different seeds produced identical runs: %+v", a)
	}
}

// TestChurnEndsFullyRepaired runs aggressive churn, stops injecting,
// and checks that once the repair tail drains every component is back
// to serving and the platform recovers its demand.
func TestChurnEndsFullyRepaired(t *testing.T) {
	p := churnPlatform(t, 7)
	inj := New(p, aggressiveConfig())
	p.Start()
	inj.Start(1500)
	// Run well past stopAt: MTTRs are around a minute, so 1500s of
	// slack drains every in-flight repair.
	p.Eng.RunUntil(3000)

	for _, id := range p.Cluster.ServerIDs() {
		if !p.Cluster.Server(id).Serving() {
			t.Errorf("server %d not serving after repair tail", id)
		}
	}
	for _, sw := range p.Fabric.Switches() {
		if !sw.Serving() {
			t.Errorf("switch %d not serving after repair tail", sw.ID)
		}
	}
	for _, l := range p.Net.Links() {
		if !l.Serving() {
			t.Errorf("link %d not serving after repair tail", l.ID)
		}
	}
	if inj.Faults() == 0 {
		t.Fatal("injector produced no faults")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants after repair tail: %v", err)
	}
	if sat := p.TotalSatisfaction(); sat < 0.99 {
		t.Fatalf("satisfaction %.3f after full repair, want >= 0.99", sat)
	}
}

// TestFastFlapNeverDetected injects only flaps whose Down time is
// shorter than the link detection delay: the control plane must never
// react — zero detections, zero route updates — yet cycles happen and
// the links end the run at full capacity.
func TestFastFlapNeverDetected(t *testing.T) {
	p := churnPlatform(t, 11)
	cfg := Config{
		Flap:            FlapConfig{MTBF: 300, Cycles: 3, Down: 2, Up: 6},
		Link:            Class{MTBF: 0, MTTR: 0, DetectDelay: 5},
		MinHealthyLinks: 1,
	}
	inj := New(p, cfg)
	// No p.Start(): control loops stay off so any route update could
	// only come from a (wrongly) fired detection.
	p.Propagate()
	baseline := p.Net.RouteUpdates
	caps := make(map[int]float64)
	for _, l := range p.Net.Links() {
		caps[int(l.ID)] = l.CapacityMbps
	}

	inj.Start(2000)
	p.Eng.RunUntil(2500)

	if inj.FlapCycles == 0 {
		t.Fatal("no flap cycles injected")
	}
	if inj.Detections != 0 {
		t.Fatalf("fast flaps were detected %d times, want 0", inj.Detections)
	}
	if p.Net.RouteUpdates != baseline {
		t.Fatalf("route updates %d -> %d during undetected flaps, want unchanged",
			baseline, p.Net.RouteUpdates)
	}
	for _, l := range p.Net.Links() {
		if !l.Serving() {
			t.Errorf("link %d not serving after flap episodes", l.ID)
		}
		if l.CapacityMbps != caps[int(l.ID)] {
			t.Errorf("link %d capacity %.1f, want %.1f restored",
				l.ID, l.CapacityMbps, caps[int(l.ID)])
		}
	}
}

// TestSlowFlapIsDetected is the counterpart: Down longer than the
// detection delay means the control plane sees each cycle and reroutes.
func TestSlowFlapIsDetected(t *testing.T) {
	p := churnPlatform(t, 13)
	cfg := Config{
		Flap:            FlapConfig{MTBF: 300, Cycles: 2, Down: 12, Up: 20},
		Link:            Class{MTBF: 0, MTTR: 0, DetectDelay: 5},
		MinHealthyLinks: 1,
	}
	inj := New(p, cfg)
	p.Propagate()
	inj.Start(2000)
	p.Eng.RunUntil(2500)

	if inj.FlapCycles == 0 {
		t.Fatal("no flap cycles injected")
	}
	if inj.Detections == 0 {
		t.Fatal("slow flaps (Down > DetectDelay) were never detected")
	}
	for _, l := range p.Net.Links() {
		if !l.Serving() {
			t.Errorf("link %d not serving after flap episodes", l.ID)
		}
	}
}

// TestMinHealthyFloors sets floors equal to the component counts, so
// every attempted fault must be skipped and nothing ever fails.
func TestMinHealthyFloors(t *testing.T) {
	p := churnPlatform(t, 17)
	cfg := aggressiveConfig()
	cfg.MinHealthyServers = len(p.Cluster.ServerIDs())
	cfg.MinHealthySwitches = len(p.Fabric.Switches())
	cfg.MinHealthyLinks = len(p.Net.Links())
	inj := New(p, cfg)
	p.Start()
	inj.Start(1000)
	p.Eng.RunUntil(1000)

	if inj.Faults() != 0 {
		t.Fatalf("floors at full population still allowed %d faults", inj.Faults())
	}
	if inj.Skipped == 0 {
		t.Fatal("no faults were attempted (test is vacuous)")
	}
	if sat := p.TotalSatisfaction(); sat < 0.99 {
		t.Fatalf("satisfaction %.3f with all faults skipped, want >= 0.99", sat)
	}
}

// TestMonitorSeesInjectedOutage wires a monitor to a hand-driven
// outage and checks the downtime lands in the availability tracker.
func TestMonitorSeesInjectedOutage(t *testing.T) {
	p := churnPlatform(t, 23)
	mon := NewMonitor(p, 0.95, 5)
	p.Start()
	mon.Start(0)
	p.Eng.RunFor(100)

	// Fail half the servers long enough for several samples, then
	// repair and give the control loops time to redeploy.
	ids := p.Cluster.ServerIDs()
	for _, id := range ids[:len(ids)/2] {
		p.FailServer(id)
	}
	p.Eng.RunFor(50)
	for _, id := range ids[:len(ids)/2] {
		p.RepairServer(id)
	}
	p.Eng.RunFor(600)
	mon.Finish()

	if mon.Avail.TotalDowntime() <= 0 {
		t.Fatal("monitor recorded no downtime across a 50s mass outage")
	}
	if mon.Avail.TotalOutages() == 0 {
		t.Fatal("monitor recorded no outage episodes")
	}
	if mon.Avail.AllRecoveries().N() == 0 {
		t.Fatal("monitor recorded no recoveries despite repair")
	}
}
