// Package faults injects rate-driven component churn into a
// core.Platform: servers, LB switches, and access links fail with
// exponentially distributed times-to-failure (MTBF), are noticed by the
// control plane after a configurable detection delay, and come back
// after an exponentially distributed repair time (MTTR) with their
// exact pre-failure capacity restored. Links additionally support
// *flapping* — short repeated down/up cycles that may clear before the
// control plane ever detects them, black-holing traffic with zero route
// churn.
//
// All randomness is drawn from the platform engine's seeded RNG inside
// event callbacks, so a run is bit-for-bit reproducible for a given
// seed and configuration.
package faults

import (
	"megadc/internal/cluster"
	"megadc/internal/core"
	"megadc/internal/ctrlplane"
	"megadc/internal/lbswitch"
	"megadc/internal/netmodel"
	"megadc/internal/sim"
)

// Class configures one component class's failure behavior. A class with
// MTBF <= 0 never fails.
type Class struct {
	// MTBF is the mean time between failures (per component, seconds of
	// simulated time). Each component's time-to-failure is drawn
	// Exponential(MTBF).
	MTBF float64
	// MTTR is the mean time to repair, measured from detection. Each
	// repair time is drawn Exponential(MTTR).
	MTTR float64
	// DetectDelay is the fixed lag between a fault occurring and the
	// control plane detecting it (health-check interval plus reaction
	// time). During the window the component black-holes its work while
	// monitoring still looks normal.
	DetectDelay float64
}

func (c Class) enabled() bool { return c.MTBF > 0 }

// FlapConfig configures link flapping: episodes of Cycles short
// down/up cycles. A flap whose Down time is shorter than the link
// class's DetectDelay clears before the control plane reacts — pure
// black-holed traffic, no route updates.
type FlapConfig struct {
	// MTBF is the mean time between flap episodes per link; <= 0
	// disables flapping.
	MTBF float64
	// Cycles is how many down/up cycles one episode contains.
	Cycles int
	// Down and Up are the fixed lengths of each cycle's outage and
	// quiet phases.
	Down, Up float64
}

func (f FlapConfig) enabled() bool { return f.MTBF > 0 && f.Cycles > 0 && f.Down > 0 }

// Config configures an Injector.
type Config struct {
	Server Class
	Switch Class
	Link   Class
	Flap   FlapConfig

	// Partition drives control-plane partitions of whole pods: the pod
	// manager keeps running on its last-acknowledged snapshot while every
	// control message to or from it is dropped, until the partition heals
	// and the bus's OnHeal hook triggers reconciliation. DetectDelay is
	// unused — a partition is a message-plane event, not a component
	// health transition. Requires the platform's control bus
	// (Config.Ctrl.Enable); with the bus disabled the class is inert.
	Partition Class

	// MinHealthyServers/Switches/Links are per-class serving floors: a
	// fault that would leave fewer serving components than the floor is
	// skipped (and the component's next failure rescheduled), so churn
	// cannot black out the whole platform.
	MinHealthyServers  int
	MinHealthySwitches int
	MinHealthyLinks    int
	// MinConnectedPods is the partition floor: a partition that would
	// leave fewer reachable pods is skipped.
	MinConnectedPods int
}

// DefaultConfig returns moderate churn: servers fail most often,
// switches and links rarely, no flapping.
func DefaultConfig() Config {
	return Config{
		Server:             Class{MTBF: 2000, MTTR: 180, DetectDelay: 15},
		Switch:             Class{MTBF: 8000, MTTR: 300, DetectDelay: 10},
		Link:               Class{MTBF: 6000, MTTR: 240, DetectDelay: 5},
		Flap:               FlapConfig{MTBF: 0, Cycles: 3, Down: 2, Up: 8},
		Partition:          Class{MTBF: 0, MTTR: 120},
		MinHealthyServers:  2,
		MinHealthySwitches: 1,
		MinHealthyLinks:    1,
		MinConnectedPods:   1,
	}
}

// Injector drives fault/detect/repair lifecycles on a platform's
// components. Create with New, then Start; counters are plain fields
// read after (or during) the run.
type Injector struct {
	p      *core.Platform
	cfg    Config
	stopAt float64

	// Counters. Faults are counted per class; FlapCycles counts each
	// down/up cycle of every flap episode separately.
	ServerFaults int64
	SwitchFaults int64
	LinkFaults   int64
	FlapEpisodes int64
	FlapCycles   int64
	// PodPartitions/PartitionHeals count control-plane partition windows
	// opened and closed on the platform's message bus.
	PodPartitions  int64
	PartitionHeals int64
	Detections     int64
	Repairs        int64
	// Skipped counts faults suppressed by the min-healthy floors.
	Skipped int64
}

// New returns an injector for p. Nothing is scheduled until Start.
func New(p *core.Platform, cfg Config) *Injector {
	return &Injector{p: p, cfg: cfg}
}

// Start schedules the first failure of every component. Faults stop
// firing at stopAt (so a run can end with a repair-only tail), but
// in-flight detections and repairs complete normally.
func (in *Injector) Start(stopAt float64) {
	in.stopAt = stopAt
	if in.cfg.Server.enabled() {
		for _, id := range in.p.Cluster.ServerIDs() {
			id := id
			in.p.Eng.After(in.exp(in.cfg.Server.MTBF), func() { in.faultServer(id) })
		}
	}
	if in.cfg.Switch.enabled() {
		for _, sw := range in.p.Fabric.Switches() {
			id := sw.ID
			in.p.Eng.After(in.exp(in.cfg.Switch.MTBF), func() { in.faultSwitch(id) })
		}
	}
	if in.cfg.Link.enabled() {
		for _, l := range in.p.Net.Links() {
			id := l.ID
			in.p.Eng.After(in.exp(in.cfg.Link.MTBF), func() { in.faultLink(id) })
		}
	}
	if in.cfg.Flap.enabled() {
		for _, l := range in.p.Net.Links() {
			id := l.ID
			in.p.Eng.After(in.exp(in.cfg.Flap.MTBF), func() { in.flapLink(id, in.cfg.Flap.Cycles) })
		}
	}
	if in.cfg.Partition.enabled() && in.p.Ctrl().Enabled() {
		for _, pm := range in.p.PodManagers() {
			id := int(pm.PodID())
			in.p.Eng.After(in.exp(in.cfg.Partition.MTBF), func() { in.partitionPod(id) })
		}
	}
}

// Faults returns the total faults injected across all classes,
// counting each flap cycle as one fault.
func (in *Injector) Faults() int64 {
	return in.ServerFaults + in.SwitchFaults + in.LinkFaults + in.FlapCycles
}

// exp draws Exponential(mean) from the platform's seeded RNG.
func (in *Injector) exp(mean float64) float64 {
	return in.p.Eng.Rand().ExpFloat64() * mean
}

func (in *Injector) servingServers() int {
	n := 0
	for _, id := range in.p.Cluster.ServerIDs() {
		if s := in.p.Cluster.Server(id); s != nil && s.Serving() {
			n++
		}
	}
	return n
}

func (in *Injector) servingSwitches() int {
	n := 0
	for _, sw := range in.p.Fabric.Switches() {
		if sw.Serving() {
			n++
		}
	}
	return n
}

func (in *Injector) servingLinks() int {
	n := 0
	for _, l := range in.p.Net.Links() {
		if l.Serving() {
			n++
		}
	}
	return n
}

func (in *Injector) faultServer(id cluster.ServerID) {
	if in.p.Eng.Now() >= in.stopAt {
		return
	}
	cl := in.cfg.Server
	reschedule := func() { in.p.Eng.After(in.exp(cl.MTBF), func() { in.faultServer(id) }) }
	srv := in.p.Cluster.Server(id)
	if srv == nil {
		return
	}
	if !srv.Serving() || in.servingServers() <= in.cfg.MinHealthyServers {
		in.Skipped++
		reschedule()
		return
	}
	if err := in.p.FaultServer(id); err != nil {
		return
	}
	in.ServerFaults++
	in.p.Eng.After(cl.DetectDelay, func() {
		if _, err := in.p.DetectServer(id); err == nil {
			in.Detections++
		}
	})
	in.p.Eng.After(cl.DetectDelay+in.exp(cl.MTTR), func() {
		if err := in.p.RepairServer(id); err == nil {
			in.Repairs++
		}
		reschedule()
	})
}

func (in *Injector) faultSwitch(id lbswitch.SwitchID) {
	if in.p.Eng.Now() >= in.stopAt {
		return
	}
	cl := in.cfg.Switch
	reschedule := func() { in.p.Eng.After(in.exp(cl.MTBF), func() { in.faultSwitch(id) }) }
	sw := in.p.Fabric.Switch(id)
	if sw == nil {
		return
	}
	if !sw.Serving() || in.servingSwitches() <= in.cfg.MinHealthySwitches {
		in.Skipped++
		reschedule()
		return
	}
	if err := in.p.FaultSwitch(id); err != nil {
		return
	}
	in.SwitchFaults++
	in.p.Eng.After(cl.DetectDelay, func() {
		if _, _, err := in.p.DetectSwitch(id); err == nil {
			in.Detections++
		}
	})
	in.p.Eng.After(cl.DetectDelay+in.exp(cl.MTTR), func() {
		if err := in.p.RepairSwitch(id); err == nil {
			in.Repairs++
		}
		reschedule()
	})
}

func (in *Injector) faultLink(id netmodel.LinkID) {
	if in.p.Eng.Now() >= in.stopAt {
		return
	}
	cl := in.cfg.Link
	reschedule := func() { in.p.Eng.After(in.exp(cl.MTBF), func() { in.faultLink(id) }) }
	l := in.p.Net.Link(id)
	if l == nil {
		return
	}
	if !l.Serving() || in.servingLinks() <= in.cfg.MinHealthyLinks {
		in.Skipped++
		reschedule()
		return
	}
	if err := in.p.FaultLink(id); err != nil {
		return
	}
	in.LinkFaults++
	in.p.Eng.After(cl.DetectDelay, func() {
		if _, err := in.p.DetectLink(id); err == nil {
			in.Detections++
		}
	})
	in.p.Eng.After(cl.DetectDelay+in.exp(cl.MTTR), func() {
		if err := in.p.RepairLink(id); err == nil {
			in.Repairs++
		}
		reschedule()
	})
}

// partitionPod opens a control-plane partition window around one pod:
// every bus message to or from the pod is dropped until the window
// heals after Exponential(MTTR). Healing fires the bus's OnHeal hook,
// which the platform wires to the pod manager's reconciliation.
func (in *Injector) partitionPod(id int) {
	if in.p.Eng.Now() >= in.stopAt {
		return
	}
	cl := in.cfg.Partition
	reschedule := func() { in.p.Eng.After(in.exp(cl.MTBF), func() { in.partitionPod(id) }) }
	bus := in.p.Ctrl()
	ep := ctrlplane.Pod(id)
	if bus.Partitioned(ep) || bus.ConnectedPods(len(in.p.PodManagers())) <= in.cfg.MinConnectedPods {
		in.Skipped++
		reschedule()
		return
	}
	bus.Partition(ep)
	in.PodPartitions++
	in.p.Eng.After(in.exp(cl.MTTR), func() {
		bus.Heal(ep)
		in.PartitionHeals++
		reschedule()
	})
}

// flapLink runs one flap episode: cyclesLeft down/up cycles. Each cycle
// faults the link, schedules the normal detection, and repairs after
// the fixed Down time — cancelling the detection if the fault cleared
// first (a fast flap the control plane never saw).
func (in *Injector) flapLink(id netmodel.LinkID, cyclesLeft int) {
	if in.p.Eng.Now() >= in.stopAt {
		return
	}
	reschedule := func() {
		in.p.Eng.After(in.exp(in.cfg.Flap.MTBF), func() { in.flapLink(id, in.cfg.Flap.Cycles) })
	}
	l := in.p.Net.Link(id)
	if l == nil {
		return
	}
	if !l.Serving() || in.servingLinks() <= in.cfg.MinHealthyLinks {
		in.Skipped++
		reschedule()
		return
	}
	if err := in.p.FaultLink(id); err != nil {
		return
	}
	in.FlapCycles++
	var det *sim.Event
	det = in.p.Eng.After(in.cfg.Link.DetectDelay, func() {
		if _, err := in.p.DetectLink(id); err == nil {
			in.Detections++
		}
	})
	in.p.Eng.After(in.cfg.Flap.Down, func() {
		// The link came back on its own; make sure the control plane
		// does not react to a fault that already cleared. Cancel is a
		// no-op if the detection already fired (slow flap).
		in.p.Eng.Cancel(det)
		if err := in.p.RepairLink(id); err == nil {
			in.Repairs++
		}
		if cyclesLeft > 1 {
			in.p.Eng.After(in.cfg.Flap.Up, func() { in.flapLink(id, cyclesLeft-1) })
		} else {
			in.FlapEpisodes++
			reschedule()
		}
	})
}
