// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock (in seconds) and an event queue.
// Events scheduled for the same instant fire in the order they were
// scheduled, which — together with an explicitly seeded random source —
// makes every simulation run exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index; -1 once removed
	canceled bool
}

// At returns the simulated time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with New.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	rng    *rand.Rand
	nSteps uint64
}

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nSteps }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute simulated time t.
// Scheduling in the past panics: it indicates a logic error in the caller.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Every schedules fn to run first at time start and then every interval
// seconds for as long as fn returns true.
func (e *Engine) Every(start, interval Time, fn func() bool) {
	if interval <= 0 {
		panic("sim: Every interval must be positive")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.After(interval, tick)
		}
	}
	e.At(start, tick)
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired or was cancelled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
}

// Step executes the next event, if any, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.nSteps++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled for later remain queued.
func (e *Engine) RunUntil(t Time) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor executes events for d seconds of simulated time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
