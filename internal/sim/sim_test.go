package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAtOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %v, want 3", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of FIFO order: %v", got)
		}
	}
}

func TestAfter(t *testing.T) {
	e := New(1)
	var at Time
	e.At(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Errorf("After fired at %v, want 15", at)
	}
}

func TestAtPastPanics(t *testing.T) {
	e := New(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEvery(t *testing.T) {
	e := New(1)
	var times []Time
	e.Every(2, 3, func() bool {
		times = append(times, e.Now())
		return len(times) < 4
	})
	e.Run()
	want := []Time{2, 5, 8, 11}
	if len(times) != len(want) {
		t.Fatalf("fired %d times, want %d", len(times), len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestEveryBadIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every with interval 0 did not panic")
		}
	}()
	New(1).Every(0, 0, func() bool { return false })
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.At(5, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	// Double cancel and cancel-after-fire are no-ops.
	e.Cancel(ev)
	ev2 := e.At(6, func() {})
	e.Run()
	e.Cancel(ev2)
	e.Cancel(nil)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New(1)
	var got []Time
	evs := make([]*Event, 0, 20)
	for i := 1; i <= 20; i++ {
		tt := Time(i)
		evs = append(evs, e.At(tt, func() { got = append(got, tt) }))
	}
	// Cancel every third event.
	for i := 0; i < len(evs); i += 3 {
		e.Cancel(evs[i])
	}
	e.Run()
	for _, at := range got {
		if int(at-1)%3 == 0 {
			t.Errorf("cancelled event at %v fired", at)
		}
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events fired out of order: %v", got)
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3) fired %d events, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Errorf("after RunUntil(10) fired %d events, want 5", len(fired))
	}
	if e.Now() != 10 {
		t.Errorf("Now() = %v, want 10 (clock advances to target)", e.Now())
	}
}

func TestRunFor(t *testing.T) {
	e := New(1)
	n := 0
	e.Every(1, 1, func() bool { n++; return true })
	e.RunFor(5.5)
	if n != 5 {
		t.Errorf("RunFor(5.5) ticked %d times, want 5", n)
	}
	e.RunFor(3)
	if n != 8 {
		t.Errorf("after RunFor(3) more, ticked %d times, want 8", n)
	}
}

func TestStepsAndPending(t *testing.T) {
	e := New(1)
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Steps() != 2 {
		t.Errorf("Steps = %d, want 2", e.Steps())
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after Run, want 0", e.Pending())
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		e := New(seed)
		var out []float64
		for i := 0; i < 50; i++ {
			e.After(e.Rand().Float64()*10, func() {
				out = append(out, e.Now()+e.Rand().Float64())
			})
		}
		e.Run()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs with same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: however events are scheduled, they always fire in
// non-decreasing time order.
func TestPropertyEventsFireInOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New(7)
		var fired []Time
		for _, d := range delays {
			at := Time(d) / 100
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
