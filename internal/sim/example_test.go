package sim_test

import (
	"fmt"

	"megadc/internal/sim"
)

// A minimal simulation: two events and a periodic tick.
func Example() {
	eng := sim.New(1)
	eng.At(10, func() { fmt.Println("t=10: VM deployed") })
	eng.After(25, func() { fmt.Println("t=25: demand spike") })
	ticks := 0
	eng.Every(5, 20, func() bool {
		ticks++
		fmt.Printf("t=%v: control loop tick %d\n", eng.Now(), ticks)
		return ticks < 2
	})
	eng.Run()
	// Output:
	// t=5: control loop tick 1
	// t=10: VM deployed
	// t=25: demand spike
	// t=25: control loop tick 2
}

func ExampleEngine_RunUntil() {
	eng := sim.New(1)
	for _, t := range []float64{1, 2, 3} {
		t := t
		eng.At(t, func() { fmt.Printf("event at %v\n", t) })
	}
	eng.RunUntil(2)
	fmt.Printf("clock: %v, pending: %d\n", eng.Now(), eng.Pending())
	// Output:
	// event at 1
	// event at 2
	// clock: 2, pending: 1
}
