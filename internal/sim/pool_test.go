package sim

import "testing"

func TestPoolRecyclesRecords(t *testing.T) {
	type rec struct {
		n  int
		fn func()
	}
	inits := 0
	var p Pool[rec]
	p.New = func(r *rec) {
		inits++
		r.fn = func() {} // stands in for the pre-bound callback idiom
	}

	a := p.Get()
	a.n = 7
	if p.Live() != 1 || p.Idle() != 0 {
		t.Fatalf("after Get: live %d idle %d", p.Live(), p.Idle())
	}
	p.Put(a)
	if p.Live() != 0 || p.Idle() != 1 {
		t.Fatalf("after Put: live %d idle %d", p.Live(), p.Idle())
	}
	b := p.Get()
	if b != a {
		t.Fatal("Get did not recycle the released record")
	}
	if b.n != 7 {
		t.Fatal("recycled record was re-zeroed (New must not rerun)")
	}
	if inits != 1 {
		t.Fatalf("New ran %d times, want 1", inits)
	}
	if b.fn == nil {
		t.Fatal("New-bound callback lost on recycle")
	}

	// Steady-state churn through a warmed pool must not allocate.
	p.Put(b)
	allocs := testing.AllocsPerRun(1000, func() {
		r := p.Get()
		p.Put(r)
	})
	if allocs != 0 {
		t.Fatalf("warmed Get/Put cycle allocates %v/op, want 0", allocs)
	}
}
