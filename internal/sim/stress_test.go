package sim

import (
	"testing"
)

// TestStressLargeHeap pushes a million events through the queue with
// interleaved cancellations — a scale well beyond any experiment, to
// catch heap-index bugs that small tests miss.
func TestStressLargeHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-event stress")
	}
	const n = 1_000_000
	e := New(1)
	fired := 0
	events := make([]*Event, 0, n)
	for i := 0; i < n; i++ {
		at := e.Rand().Float64() * 1000
		events = append(events, e.At(at, func() { fired++ }))
	}
	// Cancel every 7th event.
	cancelled := 0
	for i := 0; i < n; i += 7 {
		e.Cancel(events[i])
		cancelled++
	}
	e.Run()
	if fired != n-cancelled {
		t.Fatalf("fired %d, want %d", fired, n-cancelled)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after Run", e.Pending())
	}
}

// TestStressSelfScheduling exercises deep event chains: each event
// schedules the next, a million deep.
func TestStressSelfScheduling(t *testing.T) {
	if testing.Short() {
		t.Skip("long chain")
	}
	e := New(2)
	const depth = 1_000_000
	n := 0
	var step func()
	step = func() {
		n++
		if n < depth {
			e.After(0.001, step)
		}
	}
	e.At(0, step)
	e.Run()
	if n != depth {
		t.Fatalf("chain ran %d, want %d", n, depth)
	}
}

func BenchmarkHeapChurn(b *testing.B) {
	e := New(3)
	// Keep a standing population of 10k events; each iteration pops one
	// and pushes one — the steady-state pattern of a busy simulation.
	for i := 0; i < 10_000; i++ {
		e.After(e.Rand().Float64()*100, func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(e.Rand().Float64()*100, func() {})
		e.Step()
	}
}
