package sim

// Pool is a free-list arena for per-event records (sessions, requests).
// Records are recycled rather than garbage-collected: steady-state churn
// through Get/Put allocates nothing once the pool has warmed up, which
// keeps high-turnover event paths off the allocator. New is called once
// per fresh record and is the hook for binding callbacks that capture
// only the record pointer — the trick that avoids a closure allocation
// on every event (see sessions and requests).
//
// Pool is not safe for concurrent use; the engine is single-threaded.
type Pool[T any] struct {
	// New initializes a freshly allocated record. Optional.
	New func(*T)

	free []*T
	live int
}

// Get pops a recycled record or allocates (and initializes) a new one.
func (p *Pool[T]) Get() *T {
	p.live++
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return v
	}
	v := new(T)
	if p.New != nil {
		p.New(v)
	}
	return v
}

// Put returns a record to the free list. The caller must drop every
// reference it holds; the record will be handed out again by Get.
func (p *Pool[T]) Put(v *T) {
	p.live--
	p.free = append(p.free, v)
}

// Live returns the number of records currently checked out.
func (p *Pool[T]) Live() int { return p.live }

// Idle returns the number of recycled records waiting for reuse.
func (p *Pool[T]) Idle() int { return len(p.free) }
