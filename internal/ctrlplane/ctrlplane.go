// Package ctrlplane is the fallible asynchronous control plane: a
// deterministic message bus between the global manager, the pod
// managers, and the viprip/dnsctl configuration pipeline. Every control
// RPC routed through the bus becomes an at-least-once message with a
// per-attempt deadline, exponential backoff with seeded jitter, a retry
// cap, and an idempotency key (the message ID) so duplicated or
// reordered retries can never double-apply an effect. When the retry
// cap is exhausted the message becomes a typed dead letter and the
// caller's compensation hook runs instead of the effect.
//
// Per-link behavior (delay, jitter, loss, duplication) is configurable;
// endpoints can be partitioned (messages to and from them are dropped
// at arrival) and healed. All randomness comes from the bus's own
// seeded RNG — never from the simulation engine's — and the ideal fast
// path (zero delay, zero loss, no partition) applies effects inline
// with zero engine events and zero RNG draws, so a run with the bus
// enabled at ideal settings is byte-identical to a run without it
// (core.TestSyncEquivalence).
package ctrlplane

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"megadc/internal/metrics"
	"megadc/internal/sim"
	"megadc/internal/trace"
)

// Endpoint names one control-plane participant.
type Endpoint string

// Well-known endpoints. Pod managers use Pod(id).
const (
	// Global is the global manager.
	Global Endpoint = "global"
	// CSM is the switch-configuration pipeline (the viprip manager).
	CSM Endpoint = "csm"
	// DNS is the authoritative DNS controller.
	DNS Endpoint = "dns"
)

// Pod returns the endpoint of pod id's manager.
func Pod(id int) Endpoint { return Endpoint("pod/" + strconv.Itoa(id)) }

// PodOf parses a pod endpoint back to its pod ID.
func PodOf(ep Endpoint) (int, bool) {
	s, ok := strings.CutPrefix(string(ep), "pod/")
	if !ok {
		return 0, false
	}
	id, err := strconv.Atoi(s)
	if err != nil {
		return 0, false
	}
	return id, true
}

// epRef resolves an endpoint to a trace ref (pods only; the fixed
// endpoints have no entity kind in the flight-recorder vocabulary).
func epRef(ep Endpoint) trace.Ref {
	if id, ok := PodOf(ep); ok {
		return trace.Pod(id)
	}
	return trace.Ref{}
}

// LinkConfig describes one directed link's fault behavior.
type LinkConfig struct {
	// Delay is the fixed one-way message delay (simulated seconds).
	Delay float64
	// Jitter adds Uniform(0, Jitter) seconds per message, drawn from the
	// bus's seeded RNG.
	Jitter float64
	// LossProb is the per-attempt probability a message is lost in flight.
	LossProb float64
	// DupProb is the probability a delivered message arrives twice.
	DupProb float64
}

func (l LinkConfig) ideal() bool {
	return l.Delay == 0 && l.Jitter == 0 && l.LossProb == 0 && l.DupProb == 0
}

// LinkKey builds the Config.Links key for the from→to direction.
func LinkKey(from, to Endpoint) string { return string(from) + "->" + string(to) }

// Config configures a Bus.
type Config struct {
	// Enable turns the bus on. Disabled (the zero value), every Call and
	// Cast applies inline — the historical synchronous control plane.
	Enable bool

	// Default is the link config used for any direction not overridden
	// in Links (keys built with LinkKey).
	Default LinkConfig
	Links   map[string]LinkConfig

	// RetryTimeout is the deadline of a message's first attempt; attempt
	// n times out after RetryTimeout·BackoffFactor^(n-1)·(1+RetryJitter·U)
	// with U drawn Uniform(0,1) from the bus RNG.
	RetryTimeout  float64
	BackoffFactor float64
	RetryJitter   float64
	// MaxRetries caps the retries after the first attempt; when attempt
	// 1+MaxRetries also times out the message dead-letters.
	MaxRetries int

	// SnapshotEvery, when positive, is the period at which pod managers
	// cast utilization snapshots to the global manager, which then makes
	// inter-pod decisions on its last-received snapshot instead of live
	// state (SNIPPETS.md snippet 3's SnapshotRefreshInterval). 0 keeps
	// the global manager reading live pod state.
	SnapshotEvery float64

	// Seed seeds the bus's private RNG (loss, jitter, duplication,
	// backoff jitter). The platform defaults it to the topology seed.
	Seed int64

	// Registry, when non-nil, receives the rpc.delivery_latency
	// histogram (observed at first delivery of every Call and at 0 on
	// the ideal fast path).
	Registry *metrics.Registry
}

// DefaultConfig returns the bus defaults used by the binaries: disabled,
// ideal links, and a retry policy whose total window (≈1270 s at
// RetryTimeout 10, factor 2, 6 retries) comfortably outlasts the default
// partition MTTR, so partitioned churn runs end with zero dead letters.
func DefaultConfig() Config {
	return Config{
		RetryTimeout:  10,
		BackoffFactor: 2,
		RetryJitter:   0.1,
		MaxRetries:    6,
	}
}

// Validate checks configuration sanity (only when enabled; a disabled
// zero-value config is always valid).
func (c *Config) Validate() error {
	if !c.Enable {
		return nil
	}
	if c.RetryTimeout <= 0 {
		return fmt.Errorf("ctrlplane: RetryTimeout must be positive, got %v", c.RetryTimeout)
	}
	if c.BackoffFactor < 1 {
		return fmt.Errorf("ctrlplane: BackoffFactor must be >= 1, got %v", c.BackoffFactor)
	}
	if c.RetryJitter < 0 {
		return fmt.Errorf("ctrlplane: RetryJitter must be >= 0, got %v", c.RetryJitter)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("ctrlplane: MaxRetries must be >= 0, got %d", c.MaxRetries)
	}
	check := func(where string, l LinkConfig) error {
		if l.Delay < 0 || l.Jitter < 0 {
			return fmt.Errorf("ctrlplane: %s delay/jitter must be >= 0", where)
		}
		if l.LossProb < 0 || l.LossProb > 1 || l.DupProb < 0 || l.DupProb > 1 {
			return fmt.Errorf("ctrlplane: %s loss/dup probability outside [0,1]", where)
		}
		return nil
	}
	if err := check("default link", c.Default); err != nil {
		return err
	}
	for k, l := range c.Links {
		if err := check("link "+k, l); err != nil {
			return err
		}
	}
	if c.SnapshotEvery < 0 {
		return fmt.Errorf("ctrlplane: SnapshotEvery must be >= 0, got %v", c.SnapshotEvery)
	}
	return nil
}

// DeadLetter is one message whose retry cap was exhausted.
type DeadLetter struct {
	ID       uint64
	From, To Endpoint
	Name     string
	Attempts int
	T        float64 // simulated time the cap was declared exhausted
}

// message is one in-flight at-least-once Call.
type message struct {
	id       uint64
	from, to Endpoint
	name     string
	apply    func()
	onDead   func()

	sentAt   float64 // first attempt's send time
	attempts int
	cause    uint64 // decision CauseID captured at Call time (DESIGN.md §16)
	timer    *sim.Event
	done     bool // acked or dead-lettered; straggler deliveries are inert
}

// Bus is the control-plane message bus. All methods are nil-safe; a nil
// or disabled bus applies every Call and Cast inline.
type Bus struct {
	eng *sim.Engine
	cfg Config
	rng *rand.Rand

	tracer *trace.Recorder

	nextID      uint64
	applied     map[uint64]bool // idempotency keys of applied messages
	partitioned map[Endpoint]bool

	// OnPartition/OnHeal observe partition edges; the platform wires
	// OnHeal to the pod managers' reconciliation.
	OnPartition func(Endpoint)
	OnHeal      func(Endpoint)

	// Counters (published as rpc.* metrics).
	Sent        int64 // Calls issued
	Casts       int64 // Casts issued
	Delivered   int64 // first deliveries that applied an effect
	Deduped     int64 // duplicate deliveries suppressed by the idempotency key
	Dropped     int64 // attempts lost to link loss or partitions (incl. lost acks)
	Duplicates  int64 // attempts the link duplicated in flight
	Retries     int64 // resends after a timeout
	Acks        int64 // Calls settled by an acknowledgment
	DeadLetters int64 // Calls settled by retry-cap exhaustion
	Partitions  int64
	Heals       int64

	// DeadLetterLog records every dead letter, in order.
	DeadLetterLog []DeadLetter

	// Single-shot test knobs, consumed by the next attempt (Call or
	// Cast): force-drop it, force-duplicate it, or add a fixed extra
	// delay (which reorders it behind later traffic). While any knob is
	// armed the ideal fast path is off, so the fault actually lands.
	DropNext  int
	DupNext   int
	DelayNext float64
}

// New creates a bus on eng. The config should come from DefaultConfig
// with overrides; Validate is the caller's (platform's) job.
func New(eng *sim.Engine, cfg Config) *Bus {
	if eng == nil {
		panic("ctrlplane: New(nil engine)")
	}
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = 10
	}
	if cfg.BackoffFactor < 1 {
		cfg.BackoffFactor = 2
	}
	return &Bus{
		eng:         eng,
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		applied:     make(map[uint64]bool),
		partitioned: make(map[Endpoint]bool),
	}
}

// SetTracer attaches the flight recorder (nil disables rpc tracing).
func (b *Bus) SetTracer(r *trace.Recorder) {
	if b != nil {
		b.tracer = r
	}
}

// withCause runs f with cause installed as the recorder's current cause
// scope. Asynchronous continuations (delivery, ack, retry timers) run
// long after the decision that issued the Call returned, so they
// restore the message's captured CauseID around their own recording —
// this is how retries, duplicates, dead letters, and the applied
// effects themselves all inherit one CauseID.
func (b *Bus) withCause(cause uint64, f func()) {
	prev := b.tracer.SetCause(cause)
	f()
	b.tracer.SetCause(prev)
}

// Enabled reports whether messages actually traverse the bus.
func (b *Bus) Enabled() bool { return b != nil && b.cfg.Enable }

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// Partitioned reports whether ep is currently partitioned.
func (b *Bus) Partitioned(ep Endpoint) bool { return b != nil && b.partitioned[ep] }

// ConnectedPods counts pod endpoints NOT currently partitioned, out of n.
func (b *Bus) ConnectedPods(n int) int {
	if b == nil {
		return n
	}
	connected := n
	for ep, on := range b.partitioned {
		if !on {
			continue
		}
		if _, ok := PodOf(ep); ok {
			connected--
		}
	}
	return connected
}

// Partition cuts ep off: messages from it never leave, messages to it
// are dropped at arrival. In-flight retries keep running, so a Call
// whose retry window outlasts the partition completes after the heal.
func (b *Bus) Partition(ep Endpoint) {
	if !b.Enabled() || b.partitioned[ep] {
		return
	}
	b.partitioned[ep] = true
	b.Partitions++
	b.tracer.Record(trace.EvPartition, 0, 0, epRef(ep))
	if b.OnPartition != nil {
		b.OnPartition(ep)
	}
}

// Heal lifts ep's partition and fires OnHeal (reconciliation).
func (b *Bus) Heal(ep Endpoint) {
	if !b.Enabled() || !b.partitioned[ep] {
		return
	}
	delete(b.partitioned, ep)
	b.Heals++
	b.tracer.Record(trace.EvHeal, 0, 0, epRef(ep))
	if b.OnHeal != nil {
		b.OnHeal(ep)
	}
}

// link returns the config of the from→to direction.
func (b *Bus) link(from, to Endpoint) LinkConfig {
	if l, ok := b.cfg.Links[LinkKey(from, to)]; ok {
		return l
	}
	return b.cfg.Default
}

// idealRoundTrip reports whether a Call from→to can take the inline
// fast path: both directions ideal, neither endpoint partitioned, no
// single-shot fault armed. The fast path schedules zero engine events
// and draws zero randomness.
func (b *Bus) idealRoundTrip(from, to Endpoint) bool {
	return b.link(from, to).ideal() && b.link(to, from).ideal() &&
		!b.partitioned[from] && !b.partitioned[to] &&
		b.DropNext == 0 && b.DupNext == 0 && b.DelayNext == 0
}

// Call sends an at-least-once message whose effect is apply. On a nil
// or disabled bus, apply runs inline. Duplicates and retried deliveries
// apply at most once (idempotency key = message ID); if every attempt
// times out the message dead-letters and the effect never runs.
func (b *Bus) Call(from, to Endpoint, name string, apply func()) {
	b.CallWithDeadLetter(from, to, name, apply, nil)
}

// CallWithDeadLetter is Call with a compensation hook that runs (once)
// if the retry cap is exhausted. Note the at-least-once caveat: the
// effect may have applied even when onDead runs — a delivered message
// whose acknowledgments were all lost still dead-letters. Callers that
// cannot tolerate both running guard with their own instance token.
func (b *Bus) CallWithDeadLetter(from, to Endpoint, name string, apply func(), onDead func()) {
	if !b.Enabled() {
		apply()
		return
	}
	b.nextID++
	b.Sent++
	m := &message{id: b.nextID, from: from, to: to, name: name, apply: apply, onDead: onDead,
		sentAt: b.eng.Now(), cause: b.tracer.CurrentCause()}
	if b.idealRoundTrip(from, to) {
		// Inline: delivered, applied, and acked in the same instant.
		m.attempts, m.done = 1, true
		b.Delivered++
		b.Acks++
		b.tracer.Record(trace.EvRPCSend, float64(m.id), 1, epRef(from), epRef(to))
		b.tracer.Record(trace.EvRPCAck, float64(m.id), 0, epRef(from), epRef(to))
		apply()
		b.observeDelivery(0)
		return
	}
	b.send(m)
}

// send runs one attempt of m: loss/partition draws, delivery and
// possible duplicate delivery scheduling, and the attempt's retry timer.
func (b *Bus) send(m *message) {
	m.attempts++
	if m.attempts > 1 {
		b.Retries++
		b.tracer.Record(trace.EvRPCRetry, float64(m.id), float64(m.attempts), epRef(m.from), epRef(m.to))
	} else {
		b.tracer.Record(trace.EvRPCSend, float64(m.id), float64(m.attempts), epRef(m.from), epRef(m.to))
	}
	link := b.link(m.from, m.to)

	lost := b.partitioned[m.from]
	if !lost && b.DropNext > 0 {
		b.DropNext--
		lost = true
	}
	if !lost && link.LossProb > 0 && b.rng.Float64() < link.LossProb {
		lost = true
	}
	if lost {
		b.Dropped++
		b.tracer.RecordErr(trace.EvRPCDrop, float64(m.id), float64(m.attempts), epRef(m.from), epRef(m.to))
	} else {
		d := link.Delay
		if b.DelayNext > 0 {
			d += b.DelayNext
			b.DelayNext = 0
		}
		if link.Jitter > 0 {
			d += link.Jitter * b.rng.Float64()
		}
		b.eng.After(d, func() { b.withCause(m.cause, func() { b.deliver(m) }) })
		dup := false
		if b.DupNext > 0 {
			b.DupNext--
			dup = true
		}
		if !dup && link.DupProb > 0 && b.rng.Float64() < link.DupProb {
			dup = true
		}
		if dup {
			b.Duplicates++
			d2 := link.Delay
			if link.Jitter > 0 {
				d2 += link.Jitter * b.rng.Float64()
			}
			b.eng.After(d2, func() { b.withCause(m.cause, func() { b.deliver(m) }) })
		}
	}

	timeout := b.cfg.RetryTimeout * math.Pow(b.cfg.BackoffFactor, float64(m.attempts-1))
	if b.cfg.RetryJitter > 0 {
		timeout *= 1 + b.cfg.RetryJitter*b.rng.Float64()
	}
	m.timer = b.eng.After(timeout, func() { b.withCause(m.cause, func() { b.timeout(m) }) })
}

// deliver lands one copy of m at its receiver. Receiver partitions are
// checked at arrival time; the idempotency key makes re-deliveries
// (duplicates, retries racing a lost ack) inert.
func (b *Bus) deliver(m *message) {
	if b.partitioned[m.to] {
		b.Dropped++
		b.tracer.RecordErr(trace.EvRPCDrop, float64(m.id), float64(m.attempts), epRef(m.from), epRef(m.to))
		return
	}
	if m.done {
		// The Call already settled (acked, or dead-lettered with its
		// compensation run); a straggler copy must neither apply nor ack.
		return
	}
	if !b.applied[m.id] {
		b.applied[m.id] = true
		b.Delivered++
		b.tracer.Record(trace.EvRPCDeliver, float64(m.id), b.eng.Now()-m.sentAt, epRef(m.from), epRef(m.to))
		b.observeDelivery(b.eng.Now() - m.sentAt)
		m.apply()
	} else {
		b.Deduped++
	}
	b.sendAck(m)
}

// sendAck returns the acknowledgment over the reverse link. A lost ack
// leaves the sender retrying; the retry re-delivers, dedups, and acks
// again.
func (b *Bus) sendAck(m *message) {
	link := b.link(m.to, m.from)
	if link.LossProb > 0 && b.rng.Float64() < link.LossProb {
		b.Dropped++
		return
	}
	d := link.Delay
	if link.Jitter > 0 {
		d += link.Jitter * b.rng.Float64()
	}
	b.eng.After(d, func() {
		if m.done {
			return
		}
		if b.partitioned[m.from] {
			b.Dropped++
			return
		}
		m.done = true
		b.Acks++
		b.eng.Cancel(m.timer)
		b.withCause(m.cause, func() {
			b.tracer.Record(trace.EvRPCAck, float64(m.id), b.eng.Now()-m.sentAt, epRef(m.from), epRef(m.to))
		})
	})
}

// timeout fires when an attempt's deadline passes unacknowledged:
// resend with backoff, or declare a dead letter past the cap.
func (b *Bus) timeout(m *message) {
	if m.done {
		return
	}
	if m.attempts <= b.cfg.MaxRetries {
		b.send(m)
		return
	}
	m.done = true
	b.DeadLetters++
	b.DeadLetterLog = append(b.DeadLetterLog, DeadLetter{
		ID: m.id, From: m.from, To: m.to, Name: m.name,
		Attempts: m.attempts, T: b.eng.Now(),
	})
	b.tracer.RecordErr(trace.EvRPCDeadLetter, float64(m.id), float64(m.attempts), epRef(m.from), epRef(m.to))
	if m.onDead != nil {
		m.onDead()
	}
}

// Cast sends a best-effort one-way message (no ack, no retries, no dead
// letter) — the snapshot/gossip primitive. A lost cast is simply gone;
// the next periodic cast supersedes it.
func (b *Bus) Cast(from, to Endpoint, name string, apply func()) {
	if !b.Enabled() {
		apply()
		return
	}
	b.nextID++
	b.Casts++
	id := b.nextID
	link := b.link(from, to)
	if link.ideal() && !b.partitioned[from] && !b.partitioned[to] &&
		b.DropNext == 0 && b.DupNext == 0 && b.DelayNext == 0 {
		b.Delivered++
		b.tracer.Record(trace.EvRPCSend, float64(id), 0, epRef(from), epRef(to))
		apply()
		return
	}
	b.tracer.Record(trace.EvRPCSend, float64(id), 0, epRef(from), epRef(to))
	lost := b.partitioned[from]
	if !lost && b.DropNext > 0 {
		b.DropNext--
		lost = true
	}
	if !lost && link.LossProb > 0 && b.rng.Float64() < link.LossProb {
		lost = true
	}
	if lost {
		b.Dropped++
		b.tracer.RecordErr(trace.EvRPCDrop, float64(id), 0, epRef(from), epRef(to))
		return
	}
	d := link.Delay
	if b.DelayNext > 0 {
		d += b.DelayNext
		b.DelayNext = 0
	}
	if link.Jitter > 0 {
		d += link.Jitter * b.rng.Float64()
	}
	cause := b.tracer.CurrentCause()
	deliver := func() {
		b.withCause(cause, func() {
			if b.partitioned[to] {
				b.Dropped++
				b.tracer.RecordErr(trace.EvRPCDrop, float64(id), 0, epRef(from), epRef(to))
				return
			}
			b.Delivered++
			b.tracer.Record(trace.EvRPCDeliver, float64(id), 0, epRef(from), epRef(to))
			apply()
		})
	}
	b.eng.After(d, deliver)
	dup := false
	if b.DupNext > 0 {
		b.DupNext--
		dup = true
	}
	if !dup && link.DupProb > 0 && b.rng.Float64() < link.DupProb {
		dup = true
	}
	if dup {
		// Snapshot payloads are idempotent by design (last write wins),
		// so a duplicated cast applies twice on purpose.
		b.Duplicates++
		d2 := link.Delay
		if link.Jitter > 0 {
			d2 += link.Jitter * b.rng.Float64()
		}
		b.eng.After(d2, deliver)
	}
}

func (b *Bus) observeDelivery(latency float64) {
	if b.cfg.Registry != nil {
		b.cfg.Registry.Histogram("rpc.delivery_latency").Observe(latency)
	}
}
