package ctrlplane

import (
	"fmt"
	"testing"

	"megadc/internal/sim"
)

func enabledCfg() Config {
	cfg := DefaultConfig()
	cfg.Enable = true
	cfg.RetryJitter = 0 // exact timings in these tests
	return cfg
}

// A nil or disabled bus is the synchronous control plane: effects apply
// inline, immediately.
func TestDisabledAppliesInline(t *testing.T) {
	var nilBus *Bus
	ran := 0
	nilBus.Call(Global, CSM, "x", func() { ran++ })
	nilBus.Cast(Global, CSM, "x", func() { ran++ })
	if ran != 2 {
		t.Fatalf("nil bus ran %d effects inline, want 2", ran)
	}
	if nilBus.Enabled() || nilBus.Partitioned(Global) {
		t.Fatal("nil bus must report disabled and unpartitioned")
	}

	eng := sim.New(1)
	b := New(eng, Config{}) // Enable false
	b.Call(Global, CSM, "x", func() { ran++ })
	if ran != 3 || b.Sent != 0 {
		t.Fatalf("disabled bus: ran=%d sent=%d", ran, b.Sent)
	}
}

// The ideal fast path must schedule zero engine events and draw zero
// randomness, so an enabled-but-ideal bus cannot perturb a seeded run.
func TestIdealFastPathIsInert(t *testing.T) {
	ref := sim.New(42)
	eng := sim.New(42)
	b := New(eng, enabledCfg())

	applied := 0
	for i := 0; i < 5; i++ {
		b.Call(Global, Pod(i), "knob", func() { applied++ })
		b.Cast(Pod(i), Global, "snap", func() { applied++ })
	}
	if applied != 10 {
		t.Fatalf("applied = %d, want 10 inline", applied)
	}
	eng.RunUntil(1000)
	ref.RunUntil(1000)
	if eng.Steps() != ref.Steps() {
		t.Fatalf("ideal bus scheduled events: steps %d vs %d", eng.Steps(), ref.Steps())
	}
	if eng.Rand().Int63() != ref.Rand().Int63() {
		t.Fatal("ideal bus perturbed the engine RNG stream")
	}
	if b.Sent != 5 || b.Acks != 5 || b.Delivered != 10 || b.Casts != 5 {
		t.Fatalf("counters: %+v", *b)
	}
}

// Delayed delivery: effect at t=delay, ack at t=2·delay, retry timer
// canceled. (Delay 4 keeps the round trip strictly inside the 10 s
// first-attempt deadline — at exactly 2·delay == RetryTimeout the
// earlier-scheduled timer wins the same-instant tie and retries.)
func TestDelayedCallDeliversAndAcks(t *testing.T) {
	eng := sim.New(1)
	cfg := enabledCfg()
	cfg.Default = LinkConfig{Delay: 4}
	b := New(eng, cfg)

	var appliedAt float64 = -1
	eng.At(0, func() {
		b.Call(Global, CSM, "knob", func() { appliedAt = eng.Now() })
	})
	eng.RunUntil(1000)
	if appliedAt != 4 {
		t.Fatalf("applied at t=%v, want 4", appliedAt)
	}
	if b.Acks != 1 || b.Retries != 0 || b.DeadLetters != 0 {
		t.Fatalf("acks=%d retries=%d dead=%d", b.Acks, b.Retries, b.DeadLetters)
	}
}

// Total forward loss: every attempt drops, backoff escalates, and past
// the cap the message dead-letters with the effect never applied and
// the compensation hook run exactly once.
func TestTotalLossDeadLetters(t *testing.T) {
	eng := sim.New(1)
	cfg := enabledCfg()
	cfg.Links = map[string]LinkConfig{LinkKey(Global, CSM): {LossProb: 1}}
	b := New(eng, cfg)

	applied, dead := 0, 0
	eng.At(0, func() {
		b.CallWithDeadLetter(Global, CSM, "knob", func() { applied++ }, func() { dead++ })
	})
	eng.RunUntil(100000)
	if applied != 0 || dead != 1 {
		t.Fatalf("applied=%d dead=%d, want 0/1", applied, dead)
	}
	wantAttempts := 1 + cfg.MaxRetries
	if b.Retries != int64(cfg.MaxRetries) || b.Dropped != int64(wantAttempts) {
		t.Fatalf("retries=%d dropped=%d", b.Retries, b.Dropped)
	}
	if len(b.DeadLetterLog) != 1 || b.DeadLetterLog[0].Attempts != wantAttempts ||
		b.DeadLetterLog[0].Name != "knob" {
		t.Fatalf("dead letter log: %+v", b.DeadLetterLog)
	}
	// Backoff 10+20+40+80+160+320+640 = 1270 (jitter off).
	if b.DeadLetterLog[0].T != 1270 {
		t.Fatalf("dead letter at t=%v, want 1270", b.DeadLetterLog[0].T)
	}
}

// Lost acks: the effect applies on the first delivery; every retry
// re-delivers and is suppressed by the idempotency key. With the ack
// path severed the call still dead-letters — at-least-once, and the
// caller's token must tolerate apply+onDead both running.
func TestLostAcksDedupRetries(t *testing.T) {
	eng := sim.New(1)
	cfg := enabledCfg()
	cfg.Links = map[string]LinkConfig{LinkKey(CSM, Global): {LossProb: 1}}
	b := New(eng, cfg)

	applied := 0
	eng.At(0, func() { b.Call(Global, CSM, "knob", func() { applied++ }) })
	eng.RunUntil(100000)
	if applied != 1 {
		t.Fatalf("applied %d times, want exactly 1 (idempotency)", applied)
	}
	if b.Deduped != int64(cfg.MaxRetries) {
		t.Fatalf("deduped=%d, want %d", b.Deduped, cfg.MaxRetries)
	}
	if b.DeadLetters != 1 || b.Acks != 0 {
		t.Fatalf("dead=%d acks=%d", b.DeadLetters, b.Acks)
	}
}

// An in-flight duplicate delivers twice but applies once.
func TestDuplicateAppliesOnce(t *testing.T) {
	eng := sim.New(1)
	cfg := enabledCfg()
	cfg.Default = LinkConfig{Delay: 2}
	b := New(eng, cfg)
	b.DupNext = 1

	applied := 0
	eng.At(0, func() { b.Call(Global, CSM, "knob", func() { applied++ }) })
	eng.RunUntil(1000)
	if applied != 1 || b.Duplicates != 1 || b.Deduped != 1 {
		t.Fatalf("applied=%d dups=%d deduped=%d", applied, b.Duplicates, b.Deduped)
	}
	if b.DeadLetters != 0 {
		t.Fatalf("dead letters: %d", b.DeadLetters)
	}
}

// Partitioning the receiver drops arrivals; the retry loop outlives the
// partition and the call completes after the heal, with OnHeal observed.
func TestPartitionHealCompletesCall(t *testing.T) {
	eng := sim.New(1)
	cfg := enabledCfg()
	cfg.Default = LinkConfig{Delay: 1}
	b := New(eng, cfg)

	var healed []Endpoint
	b.OnHeal = func(ep Endpoint) { healed = append(healed, ep) }

	applied := 0
	eng.At(0, func() { b.Partition(Pod(3)) })
	eng.At(5, func() { b.Call(Global, Pod(3), "deploy", func() { applied++ }) })
	eng.At(100, func() { b.Heal(Pod(3)) })
	eng.RunUntil(100000)

	if applied != 1 || b.DeadLetters != 0 {
		t.Fatalf("applied=%d dead=%d: call must survive a partition shorter than the retry window", applied, b.DeadLetters)
	}
	if len(healed) != 1 || healed[0] != Pod(3) {
		t.Fatalf("OnHeal saw %v", healed)
	}
	if b.Partitions != 1 || b.Heals != 1 {
		t.Fatalf("partitions=%d heals=%d", b.Partitions, b.Heals)
	}
}

// A partitioned sender cannot get messages out either.
func TestPartitionedSenderDrops(t *testing.T) {
	eng := sim.New(1)
	cfg := enabledCfg()
	cfg.Default = LinkConfig{Delay: 1}
	b := New(eng, cfg)

	eng.At(0, func() {
		b.Partition(Pod(0))
		b.Cast(Pod(0), Global, "snap", func() { t.Error("cast escaped a partitioned sender") })
	})
	eng.RunUntil(100)
	if b.Dropped != 1 {
		t.Fatalf("dropped=%d", b.Dropped)
	}
	if b.ConnectedPods(4) != 3 {
		t.Fatalf("ConnectedPods = %d, want 3", b.ConnectedPods(4))
	}
}

// Casts are fire-and-forget: a lost cast never retries and never
// dead-letters.
func TestCastIsBestEffort(t *testing.T) {
	eng := sim.New(1)
	cfg := enabledCfg()
	cfg.Default = LinkConfig{Delay: 1, LossProb: 1}
	b := New(eng, cfg)

	eng.At(0, func() { b.Cast(Pod(1), Global, "snap", func() { t.Error("lost cast applied") }) })
	eng.RunUntil(10000)
	if b.Dropped != 1 || b.Retries != 0 || b.DeadLetters != 0 {
		t.Fatalf("dropped=%d retries=%d dead=%d", b.Dropped, b.Retries, b.DeadLetters)
	}
}

// Same seed, same traffic → byte-identical outcome; different bus seed
// → (with these loss rates) a different trajectory. The bus's RNG is
// its own, so engine randomness stays untouched either way.
func TestSeededReproducibility(t *testing.T) {
	run := func(busSeed int64) string {
		eng := sim.New(7)
		cfg := enabledCfg()
		cfg.Seed = busSeed
		cfg.RetryJitter = 0.1
		cfg.Default = LinkConfig{Delay: 2, Jitter: 1, LossProb: 0.3, DupProb: 0.1}
		b := New(eng, cfg)
		order := ""
		for i := 0; i < 40; i++ {
			i := i
			eng.At(float64(i*3), func() {
				b.Call(Global, CSM, "knob", func() { order += fmt.Sprintf("%d@%g ", i, eng.Now()) })
			})
		}
		eng.RunUntil(1e6)
		return fmt.Sprintf("%s|d=%d drop=%d dup=%d retry=%d ack=%d dead=%d|eng=%d",
			order, b.Delivered, b.Dropped, b.Duplicates, b.Retries, b.Acks, b.DeadLetters,
			eng.Rand().Int63())
	}
	a, b2 := run(11), run(11)
	if a != b2 {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b2)
	}
	if run(12) == a {
		t.Fatal("different bus seed produced an identical faulty trajectory (suspicious)")
	}
}

func TestValidate(t *testing.T) {
	cfg := enabledCfg()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default enabled config invalid: %v", err)
	}
	bad := enabledCfg()
	bad.Default.LossProb = 1.5
	if bad.Validate() == nil {
		t.Fatal("LossProb 1.5 must fail validation")
	}
	bad = enabledCfg()
	bad.RetryTimeout = 0
	if bad.Validate() == nil {
		t.Fatal("RetryTimeout 0 must fail validation")
	}
	off := Config{}
	if err := off.Validate(); err != nil {
		t.Fatalf("disabled zero config must validate: %v", err)
	}
}

func TestPodEndpointRoundTrip(t *testing.T) {
	for _, id := range []int{0, 3, 17} {
		got, ok := PodOf(Pod(id))
		if !ok || got != id {
			t.Fatalf("PodOf(Pod(%d)) = %d,%v", id, got, ok)
		}
	}
	if _, ok := PodOf(Global); ok {
		t.Fatal("PodOf(Global) must be false")
	}
}
