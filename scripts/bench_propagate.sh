#!/bin/sh
# Regenerates BENCH_propagate.json, the committed benchmark baseline for
# the propagation fast path:
#
#   - BenchmarkPropagateSteady / BenchmarkPropagateFull* /
#     BenchmarkPlatformPropagate with -benchmem, so ns/op, B/op, and
#     allocs/op are recorded (the incremental-propagation acceptance
#     bar is steady-state ≥5x cheaper than full recompute);
#   - the E2 (placement scalability) and E3 (pod size) experiment
#     benchmarks at -benchtime=1x for their headline wall-clock metrics.
#
# Run from anywhere; writes BENCH_propagate.json at the repo root.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_propagate.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkPropagateSteady|BenchmarkPropagateFull|BenchmarkPlatformPropagate' \
	-benchmem -benchtime=1s . >"$tmp"
go test -run '^$' -bench 'BenchmarkE2PlacementScalability|BenchmarkE3PodSize' \
	-benchtime=1x . >>"$tmp"

go run ./tools/benchjson <"$tmp" >"$out"
echo "wrote $out"
