#!/bin/sh
# Regenerates BENCH_requests.json, the committed request-engine baseline
# (DESIGN.md §14): open-loop request throughput (ns/req, req/s) and the
# capacity-refresh tick cost (ns/switch) at 1K and 10K LB switches, one
# VIP-exposed application per switch.
#
# Each tier is one `go test` invocation at -benchtime=1x — a drive
# iteration simulates a fixed 100K-request window, and the refresh
# benchmark amortizes a 100-pass batch internally, so both report stable
# custom metrics at a single iteration. Tiers merge into the baseline
# one at a time via `benchjson -scale N -merge`, so a partial rerun
# (e.g. `SWITCHES="10000" scripts/bench_requests.sh`) refreshes only its
# own rows.
#
# Run from anywhere; writes BENCH_requests.json at the repo root.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_requests.json
tmp=$(mktemp)
merged=$(mktemp)
trap 'rm -f "$tmp" "$merged"' EXIT

SWITCHES=${SWITCHES:-"1000 10000"}

for n in $SWITCHES; do
	echo "== tier: $n switches ==" >&2
	MEGADC_REQSCALE=$n go test -run '^$' -bench 'BenchmarkRequests' \
		-benchtime=1x -benchmem -timeout 30m . >"$tmp"
	go run ./tools/benchjson -scale "$n" -merge "$out" <"$tmp" >"$merged"
	mv "$merged" "$out"
	merged=$(mktemp)
done
echo "wrote $out"
