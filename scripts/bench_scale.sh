#!/bin/sh
# Regenerates BENCH_scale.json, the committed scale-trajectory baseline
# (DESIGN.md §13): construction, steady-tick, and full-propagation cost
# at 1K, 10K, 100K, and 300K servers (the last being the paper's
# headline 300K-server / 300K-app / 6M-RIP build-out).
#
# Each tier is one `go test` invocation at -benchtime=1x — the 300K
# construct alone takes over a minute, and BenchmarkScaleSteadyTick
# amortizes a 1000-tick batch internally so its ns/tick metric stays
# stable at a single iteration. Tiers merge into the baseline one at a
# time via `benchjson -scale N -merge`, so a partial rerun (e.g.
# `SCALES="10000" scripts/bench_scale.sh`) refreshes only its own rows.
#
# Run from anywhere; writes BENCH_scale.json at the repo root.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_scale.json
tmp=$(mktemp)
merged=$(mktemp)
trap 'rm -f "$tmp" "$merged"' EXIT

SCALES=${SCALES:-"1000 10000 100000 300000"}

for scale in $SCALES; do
	echo "== tier: $scale servers ==" >&2
	MEGADC_SCALE=$scale go test -run '^$' -bench 'BenchmarkScale' \
		-benchtime=1x -benchmem -timeout 60m . >"$tmp"
	go run ./tools/benchjson -scale "$scale" -merge "$out" <"$tmp" >"$merged"
	mv "$merged" "$out"
	merged=$(mktemp)
done
echo "wrote $out"
